//! Summary statistics over a run's [`Telemetry`] series.
//!
//! The raw series answers "what happened when"; this module reduces it to
//! the headline numbers a campaign table wants — peak queue depths,
//! demotion counts per level, preemption churn, speculation and admission
//! tallies — in one deterministic pass.

use std::fmt;

use serde::{Deserialize, Serialize};

use lasmq_simulator::{DecisionEvent, Telemetry};

/// Aggregates of one run's telemetry. Build with
/// [`TelemetrySummary::from_telemetry`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct TelemetrySummary {
    /// Scheduler-state samples in the series (one per full pass).
    pub samples: u64,
    /// Decision events in the series.
    pub decisions: u64,
    /// Largest depth observed in any single queue.
    pub peak_queue_depth: u32,
    /// Per-queue maximum depth, highest-priority queue first.
    pub peak_depth_per_queue: Vec<u32>,
    /// Largest number of concurrently admitted, unfinished jobs.
    pub peak_running_jobs: u32,
    /// Largest admission backlog observed.
    pub peak_waiting_jobs: u32,
    /// Largest number of occupied containers observed.
    pub peak_used_containers: u32,
    /// Time-weighted mean of the sampled utilization (step function
    /// between consecutive samples; 0 when fewer than two samples exist).
    pub mean_sampled_utilization: f64,
    /// Demotions counted by destination queue index (grown on demand, so
    /// index `i` is the number of demotions *into* queue `i`).
    pub demotions_per_level: Vec<u64>,
    /// Total job demotions.
    pub total_demotions: u64,
    /// Tasks killed by preemption.
    pub preemption_kills: u64,
    /// Speculative copies launched.
    pub speculative_launched: u64,
    /// Speculative copies that won.
    pub speculative_won: u64,
    /// Jobs deferred by admission control on arrival.
    pub admission_deferrals: u64,
    /// Jobs admitted.
    pub admission_accepts: u64,
}

impl TelemetrySummary {
    /// Reduces a telemetry series to its summary.
    pub fn from_telemetry(telemetry: &Telemetry) -> Self {
        let mut s = TelemetrySummary {
            samples: telemetry.samples().len() as u64,
            decisions: telemetry.decisions().len() as u64,
            ..TelemetrySummary::default()
        };

        let mut util_integral = 0.0;
        let mut span = 0.0;
        for pair in telemetry.samples().windows(2) {
            let dt = pair[1].at.saturating_since(pair[0].at).as_secs_f64();
            util_integral += pair[0].utilization() * dt;
            span += dt;
        }
        if span > 0.0 {
            s.mean_sampled_utilization = util_integral / span;
        }

        for sample in telemetry.samples() {
            s.peak_running_jobs = s.peak_running_jobs.max(sample.running_jobs);
            s.peak_waiting_jobs = s.peak_waiting_jobs.max(sample.waiting_jobs);
            s.peak_used_containers = s.peak_used_containers.max(sample.used_containers);
            if sample.queue_depths.len() > s.peak_depth_per_queue.len() {
                s.peak_depth_per_queue.resize(sample.queue_depths.len(), 0);
            }
            for (peak, &depth) in s.peak_depth_per_queue.iter_mut().zip(&sample.queue_depths) {
                *peak = (*peak).max(depth);
            }
        }
        s.peak_queue_depth = s.peak_depth_per_queue.iter().copied().max().unwrap_or(0);

        for d in telemetry.decisions() {
            match *d {
                DecisionEvent::JobDemoted { to_queue, .. } => {
                    let to = to_queue as usize;
                    if to >= s.demotions_per_level.len() {
                        s.demotions_per_level.resize(to + 1, 0);
                    }
                    s.demotions_per_level[to] += 1;
                    s.total_demotions += 1;
                }
                DecisionEvent::TaskPreempted { .. } => s.preemption_kills += 1,
                DecisionEvent::SpeculativeLaunched { .. } => s.speculative_launched += 1,
                DecisionEvent::SpeculativeWon { .. } => s.speculative_won += 1,
                DecisionEvent::AdmissionDeferred { .. } => s.admission_deferrals += 1,
                DecisionEvent::AdmissionAccepted { .. } => s.admission_accepts += 1,
                // DecisionEvent is non_exhaustive; ignore future variants.
                _ => {}
            }
        }
        s
    }
}

impl fmt::Display for TelemetrySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} samples, {} decisions; peak queue depth {}, {} demotions, \
             {} preemption kills, spec {}/{} won, admission {} accepted / {} deferred, \
             mean sampled utilization {:.3}",
            self.samples,
            self.decisions,
            self.peak_queue_depth,
            self.total_demotions,
            self.preemption_kills,
            self.speculative_won,
            self.speculative_launched,
            self.admission_accepts,
            self.admission_deferrals,
            self.mean_sampled_utilization,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasmq_simulator::{
        JobId, Service, SimDuration, SimTime, TaskId, Telemetry, TelemetrySample,
    };

    fn sample(at_secs: u64, used: u32, waiting: u32, depths: &[u32]) -> TelemetrySample {
        TelemetrySample {
            at: SimTime::from_secs(at_secs),
            running_jobs: depths.iter().sum(),
            waiting_jobs: waiting,
            used_containers: used,
            total_containers: 10,
            queue_depths: depths.to_vec(),
        }
    }

    #[test]
    fn empty_telemetry_summarizes_to_zeros() {
        let s = TelemetrySummary::from_telemetry(&Telemetry::new());
        assert_eq!(s, TelemetrySummary::default());
        assert_eq!(s.peak_queue_depth, 0);
    }

    #[test]
    fn peaks_and_time_weighted_utilization() {
        let mut t = Telemetry::new();
        // 10 s at utilization 0.5, then 30 s at 1.0: mean = 0.875.
        t.push_sample(sample(0, 5, 0, &[2, 0]));
        t.push_sample(sample(10, 10, 3, &[1, 4]));
        t.push_sample(sample(40, 0, 0, &[0, 0]));
        let s = TelemetrySummary::from_telemetry(&t);
        assert_eq!(s.samples, 3);
        assert_eq!(s.peak_queue_depth, 4);
        assert_eq!(s.peak_depth_per_queue, vec![2, 4]);
        assert_eq!(s.peak_waiting_jobs, 3);
        assert_eq!(s.peak_used_containers, 10);
        assert!((s.mean_sampled_utilization - 0.875).abs() < 1e-12);
    }

    #[test]
    fn decision_tallies() {
        let job = JobId::new(0);
        let task = TaskId::new(0);
        let at = SimTime::ZERO;
        let mut t = Telemetry::new();
        t.push_decision(DecisionEvent::AdmissionAccepted {
            job,
            waited: SimDuration::ZERO,
            at,
        });
        t.push_decision(DecisionEvent::AdmissionDeferred { job, at });
        for to_queue in [1, 1, 3] {
            t.push_decision(DecisionEvent::JobDemoted {
                job,
                from_queue: 0,
                to_queue,
                effective: Service::from_container_secs(1.0),
                at,
            });
        }
        t.push_decision(DecisionEvent::TaskPreempted { job, task, at });
        t.push_decision(DecisionEvent::SpeculativeLaunched { job, task, at });
        t.push_decision(DecisionEvent::SpeculativeWon { job, task, at });
        let s = TelemetrySummary::from_telemetry(&t);
        assert_eq!(s.total_demotions, 3);
        assert_eq!(s.demotions_per_level, vec![0, 2, 0, 1]);
        assert_eq!(s.preemption_kills, 1);
        assert_eq!(s.speculative_launched, 1);
        assert_eq!(s.speculative_won, 1);
        assert_eq!(s.admission_accepts, 1);
        assert_eq!(s.admission_deferrals, 1);
        assert_eq!(s.decisions, 8);
    }

    #[test]
    fn display_mentions_the_headline_numbers() {
        let mut t = Telemetry::new();
        t.push_sample(sample(0, 5, 0, &[7]));
        let text = TelemetrySummary::from_telemetry(&t).to_string();
        assert!(text.contains("peak queue depth 7"), "{text}");
        assert!(text.contains("1 samples"), "{text}");
    }

    #[test]
    fn serde_roundtrip() {
        let mut t = Telemetry::new();
        t.push_sample(sample(0, 1, 0, &[1]));
        t.push_sample(sample(5, 2, 1, &[0, 1]));
        let s = TelemetrySummary::from_telemetry(&t);
        let json = serde_json::to_string(&s).unwrap();
        let back: TelemetrySummary = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
