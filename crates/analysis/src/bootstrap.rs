//! Seeded percentile bootstrap.
//!
//! Response-time distributions are heavy-tailed, so normal-theory
//! intervals around statistics like the p99 are unreliable. The
//! percentile bootstrap resamples the data with replacement and reads the
//! interval off the resampled statistic's empirical distribution — no
//! distributional assumption, works for any statistic. Resampling uses a
//! splitmix64 stream keyed by an explicit seed, keeping campaign reports
//! reproducible without threading an RNG through the analysis.

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A bootstrap confidence interval for an arbitrary statistic.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct BootstrapCi {
    /// The statistic on the original sample.
    pub point: f64,
    /// Lower CI bound.
    pub low: f64,
    /// Upper CI bound.
    pub high: f64,
    /// Number of resamples used.
    pub resamples: usize,
}

/// Percentile-bootstrap CI of `statistic` over `values` at the given
/// `confidence` (e.g. 0.95), using `resamples` resamples seeded by `seed`.
///
/// # Panics
///
/// Panics if `values` is empty, `resamples` is zero, or `confidence` is
/// outside `(0, 1)`.
///
/// # Examples
///
/// ```
/// use lasmq_analysis::bootstrap_ci;
///
/// let data: Vec<f64> = (1..=100).map(f64::from).collect();
/// let mean = |s: &[f64]| s.iter().sum::<f64>() / s.len() as f64;
/// let ci = bootstrap_ci(&data, mean, 0.95, 1_000, 7);
/// assert!(ci.low < 50.5 && 50.5 < ci.high);
/// ```
pub fn bootstrap_ci(
    values: &[f64],
    statistic: impl Fn(&[f64]) -> f64,
    confidence: f64,
    resamples: usize,
    seed: u64,
) -> BootstrapCi {
    assert!(!values.is_empty(), "cannot bootstrap an empty sample");
    assert!(resamples > 0, "need at least one resample");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    compute_bootstrap(values, statistic, confidence, resamples, seed)
}

/// Non-panicking [`bootstrap_ci`]: `None` for an empty or non-finite
/// sample, zero resamples, or a confidence outside `(0, 1)`.
///
/// # Examples
///
/// ```
/// use lasmq_analysis::try_bootstrap_ci;
///
/// let mean = |s: &[f64]| s.iter().sum::<f64>() / s.len() as f64;
/// assert!(try_bootstrap_ci(&[], mean, 0.95, 100, 0).is_none());
/// let ci = try_bootstrap_ci(&[5.0], mean, 0.95, 100, 0).unwrap();
/// assert_eq!((ci.low, ci.point, ci.high), (5.0, 5.0, 5.0));
/// ```
pub fn try_bootstrap_ci(
    values: &[f64],
    statistic: impl Fn(&[f64]) -> f64,
    confidence: f64,
    resamples: usize,
    seed: u64,
) -> Option<BootstrapCi> {
    if values.is_empty()
        || values.iter().any(|v| !v.is_finite())
        || resamples == 0
        || !(confidence > 0.0 && confidence < 1.0)
    {
        return None;
    }
    Some(compute_bootstrap(
        values, statistic, confidence, resamples, seed,
    ))
}

/// Shared implementation; callers have validated the arguments.
fn compute_bootstrap(
    values: &[f64],
    statistic: impl Fn(&[f64]) -> f64,
    confidence: f64,
    resamples: usize,
    seed: u64,
) -> BootstrapCi {
    let n = values.len();
    let point = statistic(values);
    let mut stats = Vec::with_capacity(resamples);
    let mut state = seed ^ 0x5bf0_3635;
    let mut resample = vec![0.0; n];
    for _ in 0..resamples {
        for slot in resample.iter_mut() {
            state = splitmix64(state);
            *slot = values[(state % n as u64) as usize];
        }
        stats.push(statistic(&resample));
    }
    stats.sort_by(f64::total_cmp);
    let alpha = (1.0 - confidence) / 2.0;
    let idx =
        |q: f64| -> usize { ((q * (resamples - 1) as f64).round() as usize).min(resamples - 1) };
    BootstrapCi {
        point,
        low: stats[idx(alpha)],
        high: stats[idx(1.0 - alpha)],
        resamples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean(s: &[f64]) -> f64 {
        s.iter().sum::<f64>() / s.len() as f64
    }

    #[test]
    fn interval_brackets_the_point_estimate() {
        let data: Vec<f64> = (0..200).map(|i| (i % 13) as f64).collect();
        let ci = bootstrap_ci(&data, mean, 0.95, 500, 1);
        assert!(ci.low <= ci.point && ci.point <= ci.high);
        assert!(ci.high - ci.low < 2.0, "interval too wide: {ci:?}");
    }

    #[test]
    fn deterministic_per_seed() {
        let data: Vec<f64> = (0..50).map(f64::from).collect();
        let a = bootstrap_ci(&data, mean, 0.9, 200, 42);
        let b = bootstrap_ci(&data, mean, 0.9, 200, 42);
        let c = bootstrap_ci(&data, mean, 0.9, 200, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn works_for_tail_statistics() {
        // p90 of a long-tailed sample.
        let mut data: Vec<f64> = vec![1.0; 95];
        data.extend(vec![100.0; 5]);
        let p90 = |s: &[f64]| {
            let mut v = s.to_vec();
            v.sort_by(f64::total_cmp);
            v[(0.9 * (v.len() - 1) as f64) as usize]
        };
        let ci = bootstrap_ci(&data, p90, 0.95, 400, 3);
        assert!(ci.point == 1.0 || ci.point == 100.0);
        assert!(ci.low <= ci.high);
    }

    #[test]
    fn wider_confidence_is_wider() {
        let data: Vec<f64> = (0..100).map(|i| ((i * 37) % 100) as f64).collect();
        let narrow = bootstrap_ci(&data, mean, 0.5, 800, 9);
        let wide = bootstrap_ci(&data, mean, 0.99, 800, 9);
        assert!(wide.high - wide.low >= narrow.high - narrow.low);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_panics() {
        let _ = bootstrap_ci(&[], mean, 0.9, 10, 0);
    }

    #[test]
    fn try_bootstrap_rejects_degenerate_inputs_without_panicking() {
        assert!(try_bootstrap_ci(&[], mean, 0.9, 10, 0).is_none());
        assert!(try_bootstrap_ci(&[1.0, f64::NAN], mean, 0.9, 10, 0).is_none());
        assert!(try_bootstrap_ci(&[1.0], mean, 0.9, 0, 0).is_none());
        assert!(try_bootstrap_ci(&[1.0], mean, 1.5, 10, 0).is_none());
        assert!(try_bootstrap_ci(&[1.0], mean, 0.0, 10, 0).is_none());
    }

    #[test]
    fn try_bootstrap_single_value_collapses_to_the_point() {
        // The single-job edge case: every resample of a one-element
        // sample is that element, so the interval is degenerate but
        // finite — no NaN anywhere.
        let ci = try_bootstrap_ci(&[7.5], mean, 0.95, 50, 3).unwrap();
        assert_eq!((ci.low, ci.point, ci.high), (7.5, 7.5, 7.5));
        // And the variant agrees with the panicking one on good input.
        let data: Vec<f64> = (0..20).map(f64::from).collect();
        assert_eq!(
            try_bootstrap_ci(&data, mean, 0.9, 100, 1),
            Some(bootstrap_ci(&data, mean, 0.9, 100, 1))
        );
    }
}
