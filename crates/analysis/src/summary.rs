//! Summary statistics with confidence intervals.
//!
//! Experiment campaigns repeat each configuration over several seeds
//! ("the experiments are conducted multiple times", §III-C of the paper);
//! reporting a bare mean over 3 seeds invites over-reading. This module
//! computes the mean with its Student-t 95 % confidence interval, which
//! is the honest way to print small-sample results.

use std::fmt;

/// Mean, spread and a 95 % confidence interval of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct SampleSummary {
    /// Sample size.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected).
    pub std_dev: f64,
    /// Standard error of the mean.
    pub sem: f64,
    /// Half-width of the 95 % Student-t confidence interval
    /// (0 for n = 1 — no spread information).
    pub ci95_half_width: f64,
}

impl SampleSummary {
    /// The interval as `(low, high)`.
    pub fn ci95(&self) -> (f64, f64) {
        (
            self.mean - self.ci95_half_width,
            self.mean + self.ci95_half_width,
        )
    }

    /// Whether `value` lies inside the 95 % interval.
    pub fn contains(&self, value: f64) -> bool {
        let (lo, hi) = self.ci95();
        (lo..=hi).contains(&value)
    }
}

impl fmt::Display for SampleSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.n > 1 {
            write!(
                f,
                "{:.4} ± {:.4} (n={})",
                self.mean, self.ci95_half_width, self.n
            )
        } else {
            write!(f, "{:.4} (n=1)", self.mean)
        }
    }
}

/// Two-sided 97.5 % Student-t quantiles for small degrees of freedom
/// (≥ 30 approximated by the normal 1.96).
fn t_975(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    if df == 0 {
        f64::INFINITY
    } else if df <= TABLE.len() {
        TABLE[df - 1]
    } else {
        1.96
    }
}

/// Summarizes a sample.
///
/// # Panics
///
/// Panics if `values` is empty or contains non-finite entries.
///
/// # Examples
///
/// ```
/// let s = lasmq_analysis::summarize(&[10.0, 12.0, 11.0]);
/// assert_eq!(s.n, 3);
/// assert!((s.mean - 11.0).abs() < 1e-12);
/// assert!(s.contains(11.0));
/// ```
pub fn summarize(values: &[f64]) -> SampleSummary {
    assert!(!values.is_empty(), "cannot summarize an empty sample");
    for &v in values {
        assert!(v.is_finite(), "sample contains a non-finite value: {v}");
    }
    compute_summary(values)
}

/// Non-panicking [`summarize`]: `None` for an empty sample or one with
/// non-finite entries, so pipeline code over possibly-empty slices (a
/// bin no job landed in, a run where nothing completed) degrades to "no
/// data" instead of a panic or a NaN-poisoned table.
///
/// # Examples
///
/// ```
/// use lasmq_analysis::try_summarize;
///
/// assert!(try_summarize(&[]).is_none());
/// assert!(try_summarize(&[1.0, f64::NAN]).is_none());
/// assert_eq!(try_summarize(&[3.0]).unwrap().mean, 3.0);
/// ```
pub fn try_summarize(values: &[f64]) -> Option<SampleSummary> {
    if values.is_empty() || values.iter().any(|v| !v.is_finite()) {
        return None;
    }
    Some(compute_summary(values))
}

/// Shared implementation; callers have validated `values`.
fn compute_summary(values: &[f64]) -> SampleSummary {
    let n = values.len();
    let mean = values.iter().sum::<f64>() / n as f64;
    if n == 1 {
        return SampleSummary {
            n,
            mean,
            std_dev: 0.0,
            sem: 0.0,
            ci95_half_width: 0.0,
        };
    }
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64;
    let std_dev = var.sqrt();
    let sem = std_dev / (n as f64).sqrt();
    SampleSummary {
        n,
        mean,
        std_dev,
        sem,
        ci95_half_width: t_975(n - 1) * sem,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_value_has_zero_spread() {
        let s = summarize(&[42.0]);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.ci95_half_width, 0.0);
        assert_eq!(s.ci95(), (42.0, 42.0));
        assert!(s.to_string().contains("n=1"));
    }

    #[test]
    fn textbook_example() {
        // n=5, values 2,4,4,4,6: mean 4, var 2, sd ~1.414, sem ~0.632,
        // t(4)=2.776 → half width ~1.756.
        let s = summarize(&[2.0, 4.0, 4.0, 4.0, 6.0]);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0f64.sqrt()).abs() < 1e-12);
        assert!((s.ci95_half_width - 2.776 * 2.0f64.sqrt() / 5.0f64.sqrt()).abs() < 1e-9);
        assert!(s.contains(4.0));
        assert!(!s.contains(10.0));
    }

    #[test]
    fn large_samples_use_the_normal_quantile() {
        let values: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        let s = summarize(&values);
        assert!((s.ci95_half_width - 1.96 * s.sem).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        let _ = summarize(&[]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_panics() {
        let _ = summarize(&[1.0, f64::NAN]);
    }

    #[test]
    fn try_summarize_rejects_degenerate_inputs_without_panicking() {
        assert!(try_summarize(&[]).is_none());
        assert!(try_summarize(&[f64::NAN]).is_none());
        assert!(try_summarize(&[1.0, f64::INFINITY]).is_none());
        assert!(try_summarize(&[1.0, f64::NEG_INFINITY, 2.0]).is_none());
    }

    #[test]
    fn try_summarize_single_value_is_fully_finite() {
        // The single-job edge case: one completed job in a bin must
        // produce a usable summary, not NaN spread.
        let s = try_summarize(&[42.0]).unwrap();
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 42.0);
        assert!(s.std_dev == 0.0 && s.sem == 0.0 && s.ci95_half_width == 0.0);
        assert!(s.ci95().0.is_finite() && s.ci95().1.is_finite());
        assert_eq!(Some(s), try_summarize(&[42.0]));
        assert_eq!(s, summarize(&[42.0]));
    }
}
