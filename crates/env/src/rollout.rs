//! Policy rollouts: score whole episodes (or forked episode tails) with a
//! [`LinearPolicy`].
//!
//! Two evaluation modes, matching the two phases of training:
//!
//! * [`episode_return`] plays a full [`Env`] episode from a seed — the
//!   held-out evaluation path, where every candidate pays the full
//!   episode cost;
//! * [`fork_policy_returns`] amortizes that cost for the inner training
//!   loop: one donor episode is warmed to a fork point once, snapshotted,
//!   and then every candidate policy is evaluated as a
//!   [`Simulation::fork`] of that single snapshot — the candidates differ
//!   only in their post-fork decisions, so their returns are directly
//!   comparable and each evaluation costs only the episode tail.
//!
//! Fork evaluations run fork-parallel through
//! [`map_parallel`](lasmq_campaign::map_parallel): a [`SimSnapshot`] is
//! plain data (`Send + Sync`), so each worker rebuilds its own engine.
//! Results come back in candidate order and are bit-identical across
//! thread counts.

use lasmq_campaign::map_parallel;
use lasmq_schedulers::{LearnedScheduler, LinearPolicy};
use lasmq_simulator::{SimError, SimSnapshot, SimTime, Simulation};

use crate::{Env, EnvConfig};

/// Plays one full episode of `config` on `seed`, scoring every
/// observation with `policy`, and returns the episode return (see
/// [`RewardKind`](crate::RewardKind); higher is better).
pub fn episode_return(config: &EnvConfig, policy: &LinearPolicy, seed: u64) -> f64 {
    let mut env = Env::new(config.clone());
    let mut obs = env.reset(seed);
    loop {
        let action: Vec<f64> = obs.jobs.iter().map(|j| policy.score(&j.features)).collect();
        let step = env.step(&action);
        if step.done {
            return env.episode_return();
        }
        obs = step.observation;
    }
}

/// Evaluates many candidate policies as forks of one warm `snapshot`,
/// in parallel on up to `threads` workers.
///
/// Each candidate is installed as a fresh
/// [`LearnedScheduler`](lasmq_schedulers::LearnedScheduler) over the
/// donor's engine state and run to completion; its score is the negative
/// post-fork mean response time — the mean over jobs that finished
/// *after* the fork point, since pre-fork completions are the donor's
/// doing, not the candidate's. Higher is better. Returns one score per
/// policy, in input order, bit-identical across thread counts.
///
/// # Errors
///
/// Returns the first fork error (schema mismatch, corrupt snapshot);
/// candidate evaluation itself cannot fail.
pub fn fork_policy_returns(
    snapshot: &SimSnapshot,
    policies: &[LinearPolicy],
    threads: usize,
) -> Result<Vec<f64>, SimError> {
    let fork_at = snapshot.now();
    let outcomes = map_parallel(threads, policies.len(), |i| {
        fork_return(snapshot, &policies[i], fork_at)
    });
    outcomes.into_iter().collect()
}

fn fork_return(
    snapshot: &SimSnapshot,
    policy: &LinearPolicy,
    fork_at: SimTime,
) -> Result<f64, SimError> {
    let sim = Simulation::fork(snapshot, LearnedScheduler::new(policy.clone()))?;
    let report = sim.run();
    let mean = report
        .mean_response_secs_where(|o| o.finish.is_some_and(|f| f > fork_at))
        .unwrap_or(0.0);
    Ok(-mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RewardKind;

    #[test]
    fn episode_return_is_deterministic_and_seed_sensitive() {
        let config = EnvConfig::testbed_puma(10);
        let policy = LinearPolicy::las_like();
        let a = episode_return(&config, &policy, 21);
        let b = episode_return(&config, &policy, 21);
        assert_eq!(a.to_bits(), b.to_bits());
        let c = episode_return(&config, &policy, 22);
        assert_ne!(a.to_bits(), c.to_bits());
    }

    #[test]
    fn slowdown_reward_changes_the_return_scale() {
        let mut config = EnvConfig::testbed_puma(10);
        let mean_response = episode_return(&config, &LinearPolicy::las_like(), 21);
        config.reward = RewardKind::NegBoundedSlowdown;
        let mean_slowdown = episode_return(&config, &LinearPolicy::las_like(), 21);
        assert_ne!(mean_response.to_bits(), mean_slowdown.to_bits());
        assert!(mean_slowdown < 0.0);
    }

    fn warm_snapshot(jobs: usize, steps: usize) -> SimSnapshot {
        let mut env = Env::new(EnvConfig::testbed_puma(jobs));
        let policy = LinearPolicy::las_like();
        let mut obs = env.reset(9);
        for _ in 0..steps {
            let action: Vec<f64> = obs.jobs.iter().map(|j| policy.score(&j.features)).collect();
            let step = env.step(&action);
            assert!(!step.done, "snapshot must land mid-episode");
            obs = step.observation;
        }
        env.snapshot()
    }

    #[test]
    fn fork_returns_are_identical_across_thread_counts() {
        let snapshot = warm_snapshot(12, 4);
        let policies: Vec<LinearPolicy> = (0..6)
            .map(|i| {
                let mut w = LinearPolicy::las_like().weights;
                w[5] = i as f64 * 0.1; // vary the wait-time weight
                LinearPolicy::new(w)
            })
            .collect();
        let serial = fork_policy_returns(&snapshot, &policies, 1).unwrap();
        let parallel = fork_policy_returns(&snapshot, &policies, 8).unwrap();
        let serial_bits: Vec<u64> = serial.iter().map(|r| r.to_bits()).collect();
        let parallel_bits: Vec<u64> = parallel.iter().map(|r| r.to_bits()).collect();
        assert_eq!(serial_bits, parallel_bits);
        assert!(serial.iter().all(|&r| r < 0.0), "tails have completions");
    }

    #[test]
    fn identical_policies_fork_to_identical_returns() {
        let snapshot = warm_snapshot(10, 3);
        let twice = vec![LinearPolicy::las_like(), LinearPolicy::las_like()];
        let returns = fork_policy_returns(&snapshot, &twice, 2).unwrap();
        assert_eq!(returns[0].to_bits(), returns[1].to_bits());
    }
}
