//! The scheduler half of the environment: executes externally supplied
//! per-job scores inside the engine.
//!
//! The engine owns its scheduler by value, but the environment must keep
//! writing new scores between decision epochs — so [`ActionScheduler`]
//! and [`Env`](crate::Env) share a [`ScoreBoard`] through an
//! `Rc<RefCell<…>>` (the engine is strictly single-threaded, so the
//! non-`Send` handle is the honest type). Each allocation pass ranks jobs
//! by their current score, highest first, and grants greedily in rank
//! order — the same ordered-grant shape as LAS and the
//! [`LearnedScheduler`](lasmq_schedulers::LearnedScheduler).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use lasmq_simulator::{AllocationPlan, JobId, JobView, SchedContext, Scheduler, SimTime};
use serde::{Deserialize, Serialize};

/// State shared between [`Env`](crate::Env) and its [`ActionScheduler`]:
/// the live score table and the completion log the env drains each step.
#[derive(Debug, Default)]
pub struct ScoreBoard {
    /// Current score per admitted job; higher is served first. Jobs the
    /// policy has not scored yet (admitted mid-epoch) fall back to the
    /// LAS-like score `-ln(1 + attained)` until the next observation.
    pub scores: BTreeMap<JobId, f64>,
    /// Jobs that completed since the env last drained, with finish times,
    /// in completion order.
    pub completions: Vec<(JobId, SimTime)>,
}

/// A shared handle to a [`ScoreBoard`].
pub type SharedScores = Rc<RefCell<ScoreBoard>>;

/// Serialized [`ActionScheduler`] state for engine snapshots. Snapshots
/// are taken at step boundaries, where the env has already drained the
/// completion log, so only the score table needs to survive.
#[derive(Debug, Serialize, Deserialize)]
struct ActionState {
    scores: Vec<(JobId, f64)>,
}

/// A scheduler that ranks jobs by externally supplied scores.
#[derive(Debug, Clone)]
pub struct ActionScheduler {
    shared: SharedScores,
}

impl ActionScheduler {
    /// A scheduler reading scores from (and logging completions to)
    /// `shared`.
    pub fn new(shared: SharedScores) -> Self {
        ActionScheduler { shared }
    }

    fn fallback_score(view: &JobView) -> f64 {
        -view.attained.as_container_secs().ln_1p()
    }
}

impl Scheduler for ActionScheduler {
    fn name(&self) -> &str {
        "ENV"
    }

    fn on_job_completed(&mut self, job: JobId, now: SimTime) {
        let mut shared = self.shared.borrow_mut();
        shared.scores.remove(&job);
        shared.completions.push((job, now));
    }

    fn allocate(&mut self, ctx: &SchedContext<'_>) -> AllocationPlan {
        let jobs = ctx.jobs();
        let shared = self.shared.borrow();
        let scores: Vec<f64> = jobs
            .iter()
            .map(|j| {
                shared
                    .scores
                    .get(&j.id)
                    .copied()
                    .unwrap_or_else(|| Self::fallback_score(j))
            })
            .collect();
        drop(shared);
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        order.sort_by(|&a, &b| {
            scores[b]
                .total_cmp(&scores[a])
                .then_with(|| jobs[a].admitted_at.cmp(&jobs[b].admitted_at))
                .then_with(|| jobs[a].id.cmp(&jobs[b].id))
        });
        let mut plan = AllocationPlan::new();
        let mut budget = ctx.total_containers();
        for idx in order {
            if budget == 0 {
                break;
            }
            let want = jobs[idx].max_useful_allocation().min(budget);
            if want > 0 {
                plan.push(jobs[idx].id, want);
                budget -= want;
            }
        }
        plan
    }

    fn snapshot_state(&self) -> Option<String> {
        let shared = self.shared.borrow();
        let state = ActionState {
            scores: shared.scores.iter().map(|(&id, &s)| (id, s)).collect(),
        };
        Some(serde_json::to_string(&state).expect("ENV state serialization cannot fail"))
    }

    fn restore_state(&mut self, state: &str) -> Result<(), String> {
        let state: ActionState =
            serde_json::from_str(state).map_err(|e| format!("malformed ENV state: {e}"))?;
        let mut shared = self.shared.borrow_mut();
        shared.scores = state.scores.into_iter().collect();
        shared.completions.clear();
        Ok(())
    }

    fn check_consistency(&self) -> Result<(), String> {
        // The score table is a plain map keyed by job id; the only way it
        // can go inconsistent is a borrow leak, which would have panicked
        // already. Nothing further to audit.
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasmq_simulator::Service;

    fn view(id: u32, attained: f64, unstarted: u32) -> JobView {
        JobView {
            id: JobId::new(id),
            arrival: SimTime::ZERO,
            admitted_at: SimTime::from_secs(id as u64),
            priority: 1,
            attained: Service::from_container_secs(attained),
            attained_stage: Service::from_container_secs(attained),
            stage_index: 0,
            stage_count: 1,
            stage_progress: 0.0,
            remaining_tasks: unstarted,
            unstarted_tasks: unstarted,
            containers_per_task: 1,
            held: 0,
            oracle: None,
        }
    }

    #[test]
    fn highest_score_served_first() {
        let shared: SharedScores = SharedScores::default();
        shared.borrow_mut().scores.insert(JobId::new(0), 1.0);
        shared.borrow_mut().scores.insert(JobId::new(1), 5.0);
        let mut sched = ActionScheduler::new(shared);
        let jobs = vec![view(0, 0.0, 100), view(1, 0.0, 100)];
        let ctx = SchedContext::new(SimTime::ZERO, 10, &jobs);
        let plan = sched.allocate(&ctx);
        assert_eq!(plan.entries(), &[(JobId::new(1), 10)]);
    }

    #[test]
    fn unscored_jobs_fall_back_to_las_like_ranking() {
        let shared: SharedScores = SharedScores::default();
        let mut sched = ActionScheduler::new(shared);
        // No scores at all: least attained wins, exactly like LAS.
        let jobs = vec![view(0, 50.0, 100), view(1, 5.0, 100)];
        let ctx = SchedContext::new(SimTime::ZERO, 10, &jobs);
        let plan = sched.allocate(&ctx);
        assert_eq!(plan.entries(), &[(JobId::new(1), 10)]);
    }

    #[test]
    fn completion_log_and_state_round_trip() {
        let shared: SharedScores = SharedScores::default();
        shared.borrow_mut().scores.insert(JobId::new(2), 0.5);
        let mut sched = ActionScheduler::new(Rc::clone(&shared));
        sched.on_job_completed(JobId::new(2), SimTime::from_secs(9));
        assert_eq!(
            shared.borrow().completions,
            vec![(JobId::new(2), SimTime::from_secs(9))]
        );
        assert!(shared.borrow().scores.is_empty());

        shared.borrow_mut().scores.insert(JobId::new(3), 7.0);
        let state = sched.snapshot_state().unwrap();
        let other: SharedScores = SharedScores::default();
        let mut restored = ActionScheduler::new(Rc::clone(&other));
        restored.restore_state(&state).unwrap();
        assert_eq!(other.borrow().scores.get(&JobId::new(3)), Some(&7.0));
        assert!(restored.check_consistency().is_ok());
    }
}
