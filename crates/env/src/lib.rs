//! **lasmq-env** — a gym-style policy-training environment over the
//! LAS_MQ simulator.
//!
//! The paper's core claim is that LAS_MQ schedules well *without prior
//! information*; this crate turns the simulator into a training substrate
//! for asking the follow-up question — can a *learned* policy close the
//! gap to the oracle baselines using only the same observable state?
//!
//! The loop is the standard step/observe/act shape:
//!
//! * [`Env::reset`]`(seed)` builds a fresh episode from a reseeded
//!   [`WorkloadSpec`] and returns the initial [`Observation`];
//! * an [`Observation`] carries one fixed-width feature vector per
//!   admitted job — the **same**
//!   [`job_features`](lasmq_schedulers::job_features) the
//!   [`LearnedScheduler`](lasmq_schedulers::LearnedScheduler) scores, so
//!   a policy trained in the env transfers to the campaign lineup by
//!   construction — plus global state (clock, occupancy, queue depths);
//! * [`Env::step`]`(action)` applies one score per observed job (higher =
//!   served first), advances the engine one **decision epoch** through
//!   the [`Driver`](lasmq_simulator::Driver) batch loop, and returns the
//!   reward accrued: the negative sum of response times of jobs that
//!   completed this step, normalized by episode size, so the episode
//!   return is exactly **negative mean response time** (the
//!   [`RewardKind::NegBoundedSlowdown`] alternative divides each response
//!   by the job's isolated runtime instead).
//!
//! Episodes are deterministic end to end: same seed → byte-identical
//! observations and returns, regardless of machine load, thread count or
//! cache state. Mid-episode state is a plain engine
//! [`SimSnapshot`](lasmq_simulator::SimSnapshot) ([`Env::snapshot`] /
//! [`Env::restore`]), and the [`rollout`] module uses
//! [`Simulation::fork`](lasmq_simulator::Simulation::fork) to evaluate
//! many candidate policies from one warm snapshot in parallel — the
//! trainer's inner loop.
//!
//! # Examples
//!
//! ```
//! use lasmq_env::{Env, EnvConfig};
//! use lasmq_schedulers::LinearPolicy;
//!
//! let mut env = Env::new(EnvConfig::testbed_puma(10));
//! let policy = LinearPolicy::las_like();
//! let mut obs = env.reset(7);
//! loop {
//!     let action: Vec<f64> = obs.jobs.iter().map(|j| policy.score(&j.features)).collect();
//!     let step = env.step(&action);
//!     if step.done {
//!         break;
//!     }
//!     obs = step.observation;
//! }
//! assert!(env.episode_return() < 0.0, "response times are positive");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod action;
pub mod rollout;

use std::rc::Rc;

use lasmq_campaign::{SimSetup, WorkloadSpec};
use lasmq_schedulers::{job_features, ClusterFeatures};
use lasmq_simulator::{
    Driver, DriverStep, JobId, SimDuration, SimError, SimSnapshot, SimTime, Simulation,
    SimulationReport, VirtualClock,
};
use serde::{Deserialize, Serialize};

pub use action::{ActionScheduler, ScoreBoard, SharedScores};

/// What a step's reward measures. Both are negated costs, so higher is
/// better and a perfect scheduler approaches zero from below.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RewardKind {
    /// `-(Σ response seconds of jobs completed this step) / total_jobs`:
    /// episode return = negative mean response time in seconds.
    NegMeanResponse,
    /// `-(Σ slowdowns of jobs completed this step) / total_jobs`, where a
    /// job's slowdown is response over isolated runtime (bounded below by
    /// ≈ 1): episode return = negative mean slowdown.
    NegBoundedSlowdown,
}

/// Everything that defines an episode family: the cluster rules, the
/// workload generator (reseeded per episode), the decision-epoch length
/// and the reward.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvConfig {
    /// Cluster, quantum, admission — the simulation rules.
    pub setup: SimSetup,
    /// The workload generator; [`Env::reset`] replaces its seed.
    pub workload: WorkloadSpec,
    /// Nominal decision-epoch length. A step always makes progress: when
    /// the next engine event lies beyond the nominal epoch, the epoch
    /// stretches to reach it.
    pub epoch: SimDuration,
    /// The reward definition.
    pub reward: RewardKind,
}

impl EnvConfig {
    /// The paper's testbed (§V-A: 4×30 containers, admission cap 30, 1 s
    /// quantum) under a PUMA workload of `jobs` jobs at the 50 s mean
    /// arrival interval, 10 s decision epochs, negative-mean-response
    /// reward.
    pub fn testbed_puma(jobs: usize) -> Self {
        EnvConfig {
            setup: SimSetup::testbed(),
            workload: WorkloadSpec::Puma {
                jobs,
                mean_interval_secs: 50.0,
                seed: 42,
                geo_bandwidth_mb_per_s: None,
            },
            epoch: SimDuration::from_secs(10),
            reward: RewardKind::NegMeanResponse,
        }
    }
}

/// One admitted job as the policy sees it: its identity and the shared
/// feature vector ([`lasmq_schedulers::FEATURE_COUNT`] wide, see
/// [`lasmq_schedulers::FEATURE_NAMES`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobObservation {
    /// The job's identity (stable across steps within an episode).
    pub id: JobId,
    /// The feature vector, index-aligned with
    /// [`lasmq_schedulers::FEATURE_NAMES`].
    pub features: Vec<f64>,
}

/// The environment's full observable state at a step boundary.
///
/// Serializes deterministically (JSON field order is declaration order,
/// floats are shortest-round-trip), so byte-comparing serialized
/// observations is a valid determinism check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Simulation clock, seconds.
    pub now_secs: f64,
    /// One entry per admitted, unfinished job, in admission order.
    pub jobs: Vec<JobObservation>,
    /// Fraction of cluster containers currently held, in `[0, 1]`.
    pub occupancy: f64,
    /// Jobs parked in the admission queue (observable queue depth).
    pub admission_queue_depth: usize,
    /// Jobs finished so far.
    pub finished_jobs: usize,
    /// Total jobs in the episode.
    pub total_jobs: usize,
}

/// What one [`Env::step`] produced.
#[derive(Debug, Clone, PartialEq)]
pub struct StepResult {
    /// The next observation (empty job list once done).
    pub observation: Observation,
    /// Reward accrued this step (see [`RewardKind`]).
    pub reward: f64,
    /// Jobs that completed during this step, in completion order.
    pub completed: Vec<JobId>,
    /// `true` once the episode is over (event queue drained).
    pub done: bool,
}

/// The environment: one episode of the simulator driven decision-epoch by
/// decision-epoch.
///
/// See the crate docs for the loop shape; construction gives an
/// un-reset env, so call [`reset`](Env::reset) (or
/// [`restore`](Env::restore)) before stepping.
#[derive(Debug)]
pub struct Env {
    config: EnvConfig,
    shared: SharedScores,
    sim: Simulation<ActionScheduler>,
    driver: Driver<VirtualClock>,
    last_obs_jobs: Vec<JobId>,
    episode_return: f64,
    steps: usize,
}

impl Env {
    /// An environment for `config`, initially on the config's own seed
    /// (equivalent to `reset(workload seed)` — call [`reset`](Env::reset)
    /// to choose the episode).
    pub fn new(config: EnvConfig) -> Self {
        let shared = SharedScores::default();
        let sim = config.setup.build_simulation_with(
            config.workload.generate(),
            ActionScheduler::new(Rc::clone(&shared)),
            false,
        );
        Env {
            config,
            shared,
            sim,
            driver: Driver::new(VirtualClock),
            last_obs_jobs: Vec::new(),
            episode_return: 0.0,
            steps: 0,
        }
    }

    /// Starts a fresh episode on `seed` and returns the initial
    /// observation. Deterministic: the same config and seed always yield
    /// the same episode.
    pub fn reset(&mut self, seed: u64) -> Observation {
        let workload = self.config.workload.with_seed(seed);
        self.shared = SharedScores::default();
        self.sim = self.config.setup.build_simulation_with(
            workload.generate(),
            ActionScheduler::new(Rc::clone(&self.shared)),
            false,
        );
        self.episode_return = 0.0;
        self.steps = 0;
        self.observe()
    }

    /// The current observation. Also re-arms the job list that the next
    /// [`step`](Env::step)'s action vector is matched against.
    pub fn observe(&mut self) -> Observation {
        let views = self.sim.active_views();
        let now = self.sim.now();
        let capacity = self.sim.total_containers().max(1) as f64;
        let held: u64 = views.iter().map(|v| v.held as u64).sum();
        let cluster = ClusterFeatures {
            occupancy: (held as f64 / capacity).min(1.0),
            active_jobs: views.len(),
        };
        let jobs: Vec<JobObservation> = views
            .iter()
            .map(|v| JobObservation {
                id: v.id,
                features: job_features(v, now, &cluster).to_vec(),
            })
            .collect();
        self.last_obs_jobs = jobs.iter().map(|j| j.id).collect();
        Observation {
            now_secs: now.as_secs_f64(),
            jobs,
            occupancy: cluster.occupancy,
            admission_queue_depth: self.sim.waiting_jobs(),
            finished_jobs: self.sim.finished_jobs(),
            total_jobs: self.sim.total_jobs(),
        }
    }

    /// Applies `action` (one score per job of the last observation, in
    /// that observation's order; higher = served first), advances one
    /// decision epoch, and returns the reward, completions and next
    /// observation.
    ///
    /// # Panics
    ///
    /// Panics if `action` is not exactly as long as the last
    /// observation's job list — a mismatched action is a programming
    /// error in the policy loop, not a schedulable request.
    pub fn step(&mut self, action: &[f64]) -> StepResult {
        assert_eq!(
            action.len(),
            self.last_obs_jobs.len(),
            "action must score exactly the jobs of the last observation"
        );
        {
            let mut shared = self.shared.borrow_mut();
            for (&id, &score) in self.last_obs_jobs.iter().zip(action) {
                shared.scores.insert(id, score);
            }
        }
        // One decision epoch through the driver's batch loop. The target
        // stretches to the next pending event so every step makes
        // progress even across long idle gaps.
        let nominal = self.sim.now() + self.config.epoch;
        let target = match self.sim.next_event_time() {
            Some(t) => nominal.max(t),
            None => nominal,
        };
        while let Some(t) = self.sim.next_event_time() {
            if t > target {
                break;
            }
            if matches!(self.driver.step(&mut self.sim), DriverStep::Drained) {
                break;
            }
        }
        let completions = std::mem::take(&mut self.shared.borrow_mut().completions);
        let mut reward = 0.0;
        let total = self.sim.total_jobs().max(1) as f64;
        let mut completed = Vec::with_capacity(completions.len());
        for (id, _finish) in completions {
            completed.push(id);
            let outcome = self
                .sim
                .job_outcome(id)
                .expect("completed jobs have outcomes");
            match self.config.reward {
                RewardKind::NegMeanResponse => {
                    let response = outcome
                        .response()
                        .expect("completed jobs have responses")
                        .as_secs_f64();
                    reward -= response / total;
                }
                RewardKind::NegBoundedSlowdown => {
                    // Zero-isolated-runtime jobs cannot occur in the
                    // generators, but degrade to a response-seconds
                    // penalty rather than a panic if hand-built.
                    let slowdown = outcome.slowdown().unwrap_or_else(|| {
                        outcome
                            .response()
                            .expect("completed jobs have responses")
                            .as_secs_f64()
                    });
                    reward -= slowdown / total;
                }
            }
        }
        self.episode_return += reward;
        self.steps += 1;
        let done = self.sim.is_drained();
        StepResult {
            observation: self.observe(),
            reward,
            completed,
            done,
        }
    }

    /// Sum of step rewards since the last reset (or restore).
    pub fn episode_return(&self) -> f64 {
        self.episode_return
    }

    /// Steps taken since the last reset (or restore).
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// The simulation clock.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// `true` once the episode is over.
    pub fn is_done(&self) -> bool {
        self.sim.is_drained()
    }

    /// The episode configuration.
    pub fn config(&self) -> &EnvConfig {
        &self.config
    }

    /// Captures full mid-episode state (engine + score table) as a plain
    /// engine snapshot. Taken at a step boundary, so the completion log
    /// is empty by construction.
    pub fn snapshot(&self) -> SimSnapshot {
        self.sim.snapshot()
    }

    /// Rebuilds a paused episode from a [`snapshot`](Env::snapshot).
    /// The restored env continues byte-identically to the uninterrupted
    /// original; its [`episode_return`](Env::episode_return) restarts at
    /// zero (rewards before the snapshot belong to the original).
    ///
    /// # Errors
    ///
    /// Propagates [`Simulation::restore`] errors: schema mismatch, a
    /// snapshot of a different scheduler, or corrupt scheduler state.
    pub fn restore(config: EnvConfig, snapshot: SimSnapshot) -> Result<Self, SimError> {
        let shared = SharedScores::default();
        let sim = Simulation::restore(snapshot, ActionScheduler::new(Rc::clone(&shared)))?;
        Ok(Env {
            config,
            shared,
            sim,
            driver: Driver::new(VirtualClock),
            last_obs_jobs: Vec::new(),
            episode_return: 0.0,
            steps: 0,
        })
    }

    /// Consumes a finished episode into the engine's standard report
    /// (outcomes, stats, and — when the setup armed it — the invariant
    /// section).
    pub fn into_report(self) -> SimulationReport {
        self.sim.into_report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasmq_schedulers::LinearPolicy;

    fn run_episode(env: &mut Env, policy: &LinearPolicy, seed: u64) -> (f64, Vec<String>) {
        let mut obs = env.reset(seed);
        let mut obs_json = vec![serde_json::to_string(&obs).unwrap()];
        loop {
            let action: Vec<f64> = obs.jobs.iter().map(|j| policy.score(&j.features)).collect();
            let step = env.step(&action);
            obs = step.observation;
            obs_json.push(serde_json::to_string(&obs).unwrap());
            if step.done {
                return (env.episode_return(), obs_json);
            }
        }
    }

    #[test]
    fn episodes_complete_and_return_negative_mean_response() {
        let mut env = Env::new(EnvConfig::testbed_puma(10));
        let policy = LinearPolicy::las_like();
        let (ret, _) = run_episode(&mut env, &policy, 1);
        assert!(ret < 0.0);
        let report = env.into_report();
        assert!(report.all_completed());
        let mean = report.mean_response_secs().unwrap();
        assert!(
            (ret + mean).abs() < 1e-9,
            "episode return {ret} must equal negative mean response {mean}"
        );
    }

    #[test]
    fn same_seed_is_byte_identical_different_seed_is_not() {
        let mut env = Env::new(EnvConfig::testbed_puma(10));
        let policy = LinearPolicy::las_like();
        let (ret_a, obs_a) = run_episode(&mut env, &policy, 3);
        let (ret_b, obs_b) = run_episode(&mut env, &policy, 3);
        assert_eq!(obs_a, obs_b, "same seed must replay byte-identically");
        assert_eq!(ret_a.to_bits(), ret_b.to_bits());
        let (_, obs_c) = run_episode(&mut env, &policy, 4);
        assert_ne!(obs_a, obs_c, "different seeds must differ");
    }

    #[test]
    fn bounded_slowdown_reward_matches_report() {
        let mut config = EnvConfig::testbed_puma(10);
        config.reward = RewardKind::NegBoundedSlowdown;
        let mut env = Env::new(config);
        let (ret, _) = run_episode(&mut env, &LinearPolicy::las_like(), 5);
        let report = env.into_report();
        let mean = report.mean_slowdown().unwrap();
        assert!(
            (ret + mean).abs() < 1e-9,
            "return {ret} must equal negative mean slowdown {mean}"
        );
    }

    #[test]
    fn snapshot_restore_continues_byte_identically() {
        let config = EnvConfig::testbed_puma(12);
        let policy = LinearPolicy::las_like();

        // Uninterrupted run, recording everything after `cut` steps.
        let mut env = Env::new(config.clone());
        let mut obs = env.reset(11);
        let cut = 5;
        for _ in 0..cut {
            let action: Vec<f64> = obs.jobs.iter().map(|j| policy.score(&j.features)).collect();
            let step = env.step(&action);
            assert!(!step.done, "cut must land mid-episode");
            obs = step.observation;
        }
        let snapshot = env.snapshot();
        let mut tail = Vec::new();
        let mut tail_return = 0.0;
        loop {
            let action: Vec<f64> = obs.jobs.iter().map(|j| policy.score(&j.features)).collect();
            let step = env.step(&action);
            tail.push(serde_json::to_string(&step.observation).unwrap());
            tail_return += step.reward;
            if step.done {
                break;
            }
            obs = step.observation;
        }

        // Restored run: round-trip the snapshot through JSON (checkpoint
        // bytes), rebuild, and replay the tail.
        let snapshot = SimSnapshot::from_json(&snapshot.to_json()).unwrap();
        let mut restored = Env::restore(config, snapshot).unwrap();
        let mut obs = restored.observe();
        let mut tail2 = Vec::new();
        loop {
            let action: Vec<f64> = obs.jobs.iter().map(|j| policy.score(&j.features)).collect();
            let step = restored.step(&action);
            tail2.push(serde_json::to_string(&step.observation).unwrap());
            if step.done {
                break;
            }
            obs = step.observation;
        }
        assert_eq!(tail, tail2, "restored episodes must continue identically");
        assert!((restored.episode_return() - tail_return).abs() < 1e-12);
    }

    #[test]
    fn invariant_checked_episode_is_clean() {
        let mut config = EnvConfig::testbed_puma(10);
        config.setup = config.setup.check_invariants(true);
        let mut env = Env::new(config);
        run_episode(&mut env, &LinearPolicy::las_like(), 2);
        let report = env.into_report();
        let invariants = report.invariants().expect("checker was armed");
        assert!(invariants.is_clean(), "{invariants}");
        assert!(invariants.checks_run > 0);
    }

    #[test]
    fn rejects_mismatched_action_length() {
        let mut env = Env::new(EnvConfig::testbed_puma(5));
        let obs = env.reset(1);
        let bad = vec![0.0; obs.jobs.len() + 1];
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            env.step(&bad);
        }))
        .is_err());
    }
}
