//! The Fair Sojourn Protocol (FSP) over (optionally noisy) size estimates.
//!
//! FSP (Friedman & Henderson, SIGMETRICS 2003) runs a *virtual* processor-
//! sharing system on the side: every admitted job progresses in the virtual
//! system at an equal share of the cluster's capacity, and the *real*
//! cluster is devoted to jobs in the order they complete in the virtual
//! system. The result is SRPT-like mean response with PS-like fairness —
//! no job finishes later than it would have under plain processor sharing
//! (when sizes are known exactly).
//!
//! That "known exactly" is the catch the robustness campaign probes: the
//! virtual system needs each job's *size* to know when it virtually
//! completes. This implementation feeds it estimates from the shared
//! [`SizeNoise`] model — at `sigma = 0` they are the oracle's truth, at
//! higher sigmas an under-estimated giant virtually completes early and
//! then monopolizes the real cluster, exactly the failure mode §III-B
//! predicts for size-based policies.
//!
//! Determinism: the virtual clock advances only inside
//! [`allocate`](Scheduler::allocate) by `now − last_pass`, with
//! water-filling resolved smallest-virtual-remaining-first (ties by job
//! id). The engine and the naive reference executor run scheduling passes
//! at identical instants, so both integrate the virtual system over
//! identical interval chunks and the differential oracle sees bit-identical
//! decisions.

use lasmq_simulator::{AllocationPlan, JobId, JobView, SchedContext, Scheduler, SimTime};

use crate::noise::SizeNoise;

/// One job's state in the virtual processor-sharing system.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct VirtualJob {
    /// The job id (`u32` form, for the serialized snapshot).
    job: u32,
    /// The frozen (possibly corrupted) total-size estimate, container-secs.
    estimate: f64,
    /// Service still owed in the virtual PS system, container-secs.
    virtual_remaining: f64,
    /// Virtual completion rank, assigned when `virtual_remaining` hits 0.
    finished_rank: Option<u64>,
    /// Whether the job really completed (it stays in the virtual system —
    /// its virtual copy still consumes virtual capacity until it virtually
    /// finishes, as in the true protocol — but is no longer schedulable).
    departed: bool,
}

/// The fair sojourn protocol scheduler.
///
/// # Examples
///
/// ```
/// use lasmq_schedulers::Fsp;
/// use lasmq_simulator::Scheduler;
///
/// let fsp = Fsp::new(0.0, 0);
/// assert!(fsp.requires_oracle());
/// assert_eq!(fsp.name(), "FSP");
/// ```
#[derive(Debug, Clone)]
pub struct Fsp {
    noise: SizeNoise,
    /// Virtual jobs, sorted by job id (kept sorted on insert; ids are
    /// unique). Sorted order makes snapshots byte-stable and the
    /// water-filling iteration order deterministic.
    jobs: Vec<VirtualJob>,
    /// Simulation instant the virtual system has been advanced to.
    advanced_to: SimTime,
    /// Next virtual completion rank to assign.
    next_rank: u64,
}

impl Fsp {
    /// FSP whose virtual system sees size estimates corrupted by
    /// log-normal noise of scale `sigma` (`0` = exact sizes), with `seed`
    /// pinning the per-job draws.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn new(sigma: f64, seed: u64) -> Self {
        Fsp {
            noise: SizeNoise::new(sigma, 0.0, seed),
            jobs: Vec::new(),
            advanced_to: SimTime::ZERO,
            next_rank: 0,
        }
    }

    fn position(&self, job: JobId) -> Result<usize, usize> {
        self.jobs.binary_search_by_key(&u32::from(job), |v| v.job)
    }

    /// Admits any job in `views` the virtual system has not seen yet.
    /// Estimates are frozen at first contact.
    fn admit_new(&mut self, views: &[JobView]) {
        for view in views {
            if let Err(slot) = self.position(view.id) {
                let true_size = view
                    .oracle
                    .expect("engine guarantees oracle info for oracle schedulers")
                    .total_size;
                let estimate = self.noise.estimate(view.id, true_size).as_container_secs();
                self.jobs.insert(
                    slot,
                    VirtualJob {
                        job: u32::from(view.id),
                        estimate,
                        virtual_remaining: estimate,
                        finished_rank: None,
                        departed: false,
                    },
                );
            }
        }
    }

    /// Advances the virtual PS system to `now`: `capacity × dt`
    /// container-seconds of virtual work, water-filled equally across
    /// virtually unfinished jobs, finishing them smallest-remaining-first.
    fn advance_virtual(&mut self, now: SimTime, capacity: u32) {
        let dt = now.saturating_since(self.advanced_to).as_secs_f64();
        self.advanced_to = now;
        if dt <= 0.0 {
            return;
        }
        let mut work = capacity as f64 * dt;
        loop {
            // The active set: virtually unfinished jobs, smallest first
            // (ties by id — `jobs` is id-sorted, and the sort is stable).
            let mut active: Vec<usize> = (0..self.jobs.len())
                .filter(|&i| self.jobs[i].finished_rank.is_none())
                .collect();
            if active.is_empty() || work <= 0.0 {
                return;
            }
            active.sort_by(|&a, &b| {
                self.jobs[a]
                    .virtual_remaining
                    .total_cmp(&self.jobs[b].virtual_remaining)
            });
            let n = active.len() as f64;
            let smallest = self.jobs[active[0]].virtual_remaining;
            if work >= smallest * n {
                // Enough work to virtually finish the smallest job(s):
                // drain `smallest` from everyone, rank the finishers, and
                // water-fill the rest with what remains.
                work -= smallest * n;
                for &i in &active {
                    let v = &mut self.jobs[i];
                    v.virtual_remaining -= smallest;
                    if v.virtual_remaining <= 1e-9 {
                        v.virtual_remaining = 0.0;
                        v.finished_rank = Some(self.next_rank);
                        self.next_rank += 1;
                    }
                }
            } else {
                let share = work / n;
                for &i in &active {
                    self.jobs[i].virtual_remaining -= share;
                }
                return;
            }
        }
    }

    /// The scheduling key for a job: virtually finished jobs first, in
    /// virtual completion order, then unfinished jobs by virtual remaining.
    fn priority_key(&self, job: JobId) -> (u64, f64) {
        match self.position(job) {
            Ok(i) => {
                let v = &self.jobs[i];
                match v.finished_rank {
                    Some(rank) => (rank, 0.0),
                    None => (u64::MAX, v.virtual_remaining),
                }
            }
            // Unknown jobs (cannot happen after `admit_new`) go last.
            Err(_) => (u64::MAX, f64::INFINITY),
        }
    }
}

/// Serialized state: every virtual job (sorted by id) plus the virtual
/// clock and the next completion rank.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct FspState {
    jobs: Vec<VirtualJob>,
    advanced_to_ms: u64,
    next_rank: u64,
}

impl Scheduler for Fsp {
    fn name(&self) -> &str {
        "FSP"
    }

    fn requires_oracle(&self) -> bool {
        true
    }

    fn on_job_completed(&mut self, job: JobId, _now: SimTime) {
        if let Ok(i) = self.position(job) {
            if self.jobs[i].finished_rank.is_some() {
                // Virtually done too — nothing left to simulate for it.
                self.jobs.remove(i);
            } else {
                // Really done but virtually still owed service: keep the
                // virtual copy (it competes for virtual capacity, delaying
                // other jobs' virtual finishes, as in true FSP).
                self.jobs[i].departed = true;
            }
        }
    }

    fn snapshot_state(&self) -> Option<String> {
        let state = FspState {
            jobs: self.jobs.clone(),
            advanced_to_ms: self.advanced_to.as_millis(),
            next_rank: self.next_rank,
        };
        Some(serde_json::to_string(&state).expect("FSP state serialization cannot fail"))
    }

    fn restore_state(&mut self, state: &str) -> Result<(), String> {
        let state: FspState =
            serde_json::from_str(state).map_err(|e| format!("malformed FSP state: {e}"))?;
        if state.jobs.windows(2).any(|w| w[0].job >= w[1].job) {
            return Err("FSP state jobs are not strictly id-sorted".to_string());
        }
        self.jobs = state.jobs;
        self.advanced_to = SimTime::from_millis(state.advanced_to_ms);
        self.next_rank = state.next_rank;
        Ok(())
    }

    fn check_consistency(&self) -> Result<(), String> {
        for w in self.jobs.windows(2) {
            if w[0].job >= w[1].job {
                return Err(format!(
                    "virtual jobs out of order: {} before {}",
                    w[0].job, w[1].job
                ));
            }
        }
        for v in &self.jobs {
            if !v.virtual_remaining.is_finite() || v.virtual_remaining < 0.0 {
                return Err(format!(
                    "job {} has invalid virtual remaining {}",
                    v.job, v.virtual_remaining
                ));
            }
            if let Some(rank) = v.finished_rank {
                if rank >= self.next_rank {
                    return Err(format!(
                        "job {} carries rank {rank} but only {} were assigned",
                        v.job, self.next_rank
                    ));
                }
                if v.virtual_remaining != 0.0 {
                    return Err(format!(
                        "job {} is virtually finished but has remaining {}",
                        v.job, v.virtual_remaining
                    ));
                }
            }
        }
        Ok(())
    }

    fn allocate(&mut self, ctx: &SchedContext<'_>) -> AllocationPlan {
        self.admit_new(ctx.jobs());
        self.advance_virtual(ctx.now(), ctx.total_containers());
        let jobs = ctx.jobs();
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        order.sort_by(|&a, &b| {
            let (ra, va) = self.priority_key(jobs[a].id);
            let (rb, vb) = self.priority_key(jobs[b].id);
            ra.cmp(&rb)
                .then_with(|| va.total_cmp(&vb))
                .then_with(|| jobs[a].arrival.cmp(&jobs[b].arrival))
                .then_with(|| jobs[a].id.cmp(&jobs[b].id))
        });
        let mut plan = AllocationPlan::new();
        let mut budget = ctx.total_containers();
        for idx in order {
            if budget == 0 {
                break;
            }
            let want = jobs[idx].max_useful_allocation().min(budget);
            if want > 0 {
                plan.push(jobs[idx].id, want);
                budget -= want;
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasmq_simulator::{OracleInfo, Service};

    fn view(id: u32, size: f64) -> JobView {
        JobView {
            id: JobId::new(id),
            arrival: SimTime::ZERO,
            admitted_at: SimTime::ZERO,
            priority: 1,
            attained: Service::ZERO,
            attained_stage: Service::ZERO,
            stage_index: 0,
            stage_count: 1,
            stage_progress: 0.0,
            remaining_tasks: 100,
            unstarted_tasks: 100,
            containers_per_task: 1,
            held: 0,
            oracle: Some(OracleInfo {
                total_size: Service::from_container_secs(size),
                remaining: Service::from_container_secs(size),
            }),
        }
    }

    #[test]
    fn smallest_job_virtually_finishes_first_and_gets_the_cluster() {
        let mut fsp = Fsp::new(0.0, 0);
        let jobs = vec![view(0, 1_000.0), view(1, 10.0)];
        // First pass at t = 0 admits both; nothing has virtually finished,
        // so the smaller virtual remaining leads.
        let plan = fsp.allocate(&SchedContext::new(SimTime::ZERO, 10, &jobs));
        assert_eq!(plan.entries()[0].0, JobId::new(1));
        // Advance far enough for job 1 to virtually complete (10 c·s at
        // 10 containers shared 2 ways = 2 s); it must stay first.
        let plan = fsp.allocate(&SchedContext::new(SimTime::from_secs(5), 10, &jobs));
        assert_eq!(plan.entries()[0].0, JobId::new(1));
        let (rank, _) = fsp.priority_key(JobId::new(1));
        assert_eq!(rank, 0, "job 1 virtually finished first");
        fsp.check_consistency().unwrap();
    }

    #[test]
    fn virtual_ps_is_fair_across_equal_jobs() {
        let mut fsp = Fsp::new(0.0, 0);
        let jobs = vec![view(0, 100.0), view(1, 100.0)];
        fsp.allocate(&SchedContext::new(SimTime::ZERO, 10, &jobs));
        fsp.allocate(&SchedContext::new(SimTime::from_secs(4), 10, &jobs));
        // 40 container-secs of virtual work split two ways: 20 each.
        assert_eq!(fsp.jobs[0].virtual_remaining, 80.0);
        assert_eq!(fsp.jobs[1].virtual_remaining, 80.0);
    }

    #[test]
    fn departed_jobs_keep_consuming_virtual_capacity() {
        let mut fsp = Fsp::new(0.0, 0);
        let jobs = vec![view(0, 100.0), view(1, 100.0)];
        fsp.allocate(&SchedContext::new(SimTime::ZERO, 10, &jobs));
        // Job 0 really completes while still virtually unfinished.
        fsp.on_job_completed(JobId::new(0), SimTime::from_secs(1));
        let remaining = vec![view(1, 100.0)];
        fsp.allocate(&SchedContext::new(SimTime::from_secs(3), 10, &remaining));
        // 30 c·s of virtual work still split 2 ways — the ghost gets half.
        assert_eq!(fsp.jobs.len(), 2);
        assert!(fsp.jobs[0].departed);
        assert_eq!(fsp.jobs[1].virtual_remaining, 85.0);
    }

    #[test]
    fn chunked_and_single_advance_agree_at_identical_instants() {
        let jobs = vec![view(0, 300.0), view(1, 40.0), view(2, 7.0)];
        let mut a = Fsp::new(0.7, 9);
        let mut b = Fsp::new(0.7, 9);
        for t in [0u64, 1, 2, 5, 9] {
            a.allocate(&SchedContext::new(SimTime::from_secs(t), 10, &jobs));
            b.allocate(&SchedContext::new(SimTime::from_secs(t), 10, &jobs));
        }
        assert_eq!(a.snapshot_state(), b.snapshot_state());
    }

    #[test]
    fn snapshot_round_trips_bit_identically() {
        let mut fsp = Fsp::new(1.0, 3);
        let jobs = vec![view(0, 500.0), view(1, 5.0), view(2, 50.0)];
        fsp.allocate(&SchedContext::new(SimTime::ZERO, 10, &jobs));
        fsp.allocate(&SchedContext::new(SimTime::from_secs(2), 10, &jobs));
        let snap = fsp.snapshot_state().unwrap();
        let mut restored = Fsp::new(1.0, 3);
        restored.restore_state(&snap).unwrap();
        assert_eq!(restored.snapshot_state().unwrap(), snap);
        // And the restored instance keeps making identical decisions.
        let ctx = SchedContext::new(SimTime::from_secs(7), 10, &jobs);
        assert_eq!(restored.allocate(&ctx), fsp.allocate(&ctx));
    }

    #[test]
    fn malformed_state_is_rejected() {
        let mut fsp = Fsp::new(0.0, 0);
        assert!(fsp.restore_state("not json").is_err());
        let out_of_order = r#"{"jobs":[{"job":2,"estimate":1.0,"virtual_remaining":1.0,
            "finished_rank":null,"departed":false},{"job":1,"estimate":1.0,
            "virtual_remaining":1.0,"finished_rank":null,"departed":false}],
            "advanced_to_ms":0,"next_rank":0}"#;
        assert!(fsp.restore_state(out_of_order).is_err());
    }
}
