//! WFP3 and UNICEF: batch-scheduler backfill-score heuristics.
//!
//! These two policies come from the HPC batch-scheduling literature (Tang
//! et al., *Fault-aware, utility-based job scheduling on Blue Gene/P
//! systems*, and the deep-batch-scheduler baseline suite) where they serve
//! as strong hand-tuned priority functions between FCFS and SJF:
//!
//! * **WFP3** — `(wait / runtime)³ × procs`: cubic wait-time aging scaled
//!   by the job's width. Long-waiting, wide jobs win; short-runtime jobs
//!   age fastest because the denominator is small.
//! * **UNICEF** — `wait / (log₂(procs + 1) × runtime)`: wait-time aging
//!   discounted by width — a "smallest quickest" score that favors narrow,
//!   short jobs.
//!
//! Both need a runtime estimate, which in HPC comes from user-declared
//! walltime — notoriously noisy, which is exactly what the robustness
//! campaign stresses. Here the estimate is the oracle size corrupted by
//! the shared [`SizeNoise`] model, frozen per job at first contact.
//! `procs` maps to the job's remaining container demand and `runtime` to
//! `estimate / procs` (the time the job would need at full width).
//! Scores are recomputed every pass from pass-visible state only, so the
//! engine and the reference executor agree bit-for-bit.

use std::collections::HashMap;

use lasmq_simulator::{AllocationPlan, JobId, JobView, SchedContext, Scheduler, SimTime};

use crate::noise::SizeNoise;

/// Which backfill score a [`Backfill`] instance ranks by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScoreRule {
    Wfp3,
    Unicef,
}

/// A backfill-score scheduler (WFP3 or UNICEF), built via
/// [`Backfill::wfp3`] / [`Backfill::unicef`].
///
/// # Examples
///
/// ```
/// use lasmq_schedulers::Backfill;
/// use lasmq_simulator::Scheduler;
///
/// assert_eq!(Backfill::wfp3(0.0, 0).name(), "WFP3");
/// assert_eq!(Backfill::unicef(0.0, 0).name(), "UNICEF");
/// ```
#[derive(Debug, Clone)]
pub struct Backfill {
    rule: ScoreRule,
    noise: SizeNoise,
    /// Frozen per-job size estimates (container-secs), drawn once at first
    /// contact like a user-declared walltime.
    estimates: HashMap<JobId, f64>,
}

impl Backfill {
    /// The WFP3 scheduler: rank by `(wait / runtime)³ × procs`, highest
    /// first. `sigma` is the log-normal noise on the runtime estimate
    /// (`0` = exact), `seed` pins the draws.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn wfp3(sigma: f64, seed: u64) -> Self {
        Backfill {
            rule: ScoreRule::Wfp3,
            noise: SizeNoise::new(sigma, 0.0, seed),
            estimates: HashMap::new(),
        }
    }

    /// The UNICEF scheduler: rank by `wait / (log₂(procs + 1) × runtime)`,
    /// highest first. Parameters as in [`Backfill::wfp3`].
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn unicef(sigma: f64, seed: u64) -> Self {
        Backfill {
            rule: ScoreRule::Unicef,
            noise: SizeNoise::new(sigma, 0.0, seed),
            estimates: HashMap::new(),
        }
    }

    fn estimate(&mut self, view: &JobView) -> f64 {
        let noise = self.noise;
        let id = view.id;
        *self.estimates.entry(id).or_insert_with(|| {
            let true_size = view
                .oracle
                .expect("engine guarantees oracle info for oracle schedulers")
                .total_size;
            noise.estimate(id, true_size).as_container_secs()
        })
    }

    /// The priority score for one job at `now` — higher runs first.
    fn score(&mut self, view: &JobView, now: SimTime) -> f64 {
        let wait = now.saturating_since(view.arrival).as_secs_f64();
        let procs = view.remaining_demand().max(1) as f64;
        // `estimate` is floored at a positive epsilon, so runtime > 0.
        let runtime = self.estimate(view) / procs;
        match self.rule {
            ScoreRule::Wfp3 => (wait / runtime).powi(3) * procs,
            ScoreRule::Unicef => wait / ((procs + 1.0).log2() * runtime),
        }
    }
}

/// One frozen estimate in a serialized snapshot of this scheduler.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct FrozenEstimate {
    job: u32,
    size: f64,
}

/// Serialized state: the frozen per-job estimates, sorted by job id so the
/// payload is byte-stable regardless of map iteration order.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct BackfillState {
    estimates: Vec<FrozenEstimate>,
}

impl Scheduler for Backfill {
    fn name(&self) -> &str {
        match self.rule {
            ScoreRule::Wfp3 => "WFP3",
            ScoreRule::Unicef => "UNICEF",
        }
    }

    fn requires_oracle(&self) -> bool {
        true
    }

    fn on_job_completed(&mut self, job: JobId, _now: SimTime) {
        self.estimates.remove(&job);
    }

    fn snapshot_state(&self) -> Option<String> {
        let mut estimates: Vec<FrozenEstimate> = self
            .estimates
            .iter()
            .map(|(&job, &size)| FrozenEstimate {
                job: u32::from(job),
                size,
            })
            .collect();
        estimates.sort_by_key(|e| e.job);
        let state = BackfillState { estimates };
        Some(serde_json::to_string(&state).expect("backfill state serialization cannot fail"))
    }

    fn restore_state(&mut self, state: &str) -> Result<(), String> {
        let state: BackfillState =
            serde_json::from_str(state).map_err(|e| format!("malformed backfill state: {e}"))?;
        self.estimates = state
            .estimates
            .into_iter()
            .map(|e| (JobId::new(e.job), e.size))
            .collect();
        Ok(())
    }

    fn check_consistency(&self) -> Result<(), String> {
        for (&job, &size) in &self.estimates {
            if !size.is_finite() || size <= 0.0 {
                return Err(format!(
                    "job {} has invalid frozen estimate {size}",
                    u32::from(job)
                ));
            }
        }
        Ok(())
    }

    fn allocate(&mut self, ctx: &SchedContext<'_>) -> AllocationPlan {
        let jobs = ctx.jobs();
        let now = ctx.now();
        let mut keyed: Vec<(f64, usize)> = (0..jobs.len())
            .map(|i| (self.score(&jobs[i], now), i))
            .collect();
        // Highest score first; ties resolve oldest-arrival then lowest id.
        keyed.sort_by(|a, b| {
            b.0.total_cmp(&a.0)
                .then_with(|| jobs[a.1].arrival.cmp(&jobs[b.1].arrival))
                .then_with(|| jobs[a.1].id.cmp(&jobs[b.1].id))
        });
        let mut plan = AllocationPlan::new();
        let mut budget = ctx.total_containers();
        for (_, idx) in keyed {
            if budget == 0 {
                break;
            }
            let want = jobs[idx].max_useful_allocation().min(budget);
            if want > 0 {
                plan.push(jobs[idx].id, want);
                budget -= want;
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasmq_simulator::{OracleInfo, Service};

    fn view(id: u32, size: f64, tasks: u32, arrival_secs: u64) -> JobView {
        JobView {
            id: JobId::new(id),
            arrival: SimTime::from_secs(arrival_secs),
            admitted_at: SimTime::from_secs(arrival_secs),
            priority: 1,
            attained: Service::ZERO,
            attained_stage: Service::ZERO,
            stage_index: 0,
            stage_count: 1,
            stage_progress: 0.0,
            remaining_tasks: tasks,
            unstarted_tasks: tasks,
            containers_per_task: 1,
            held: 0,
            oracle: Some(OracleInfo {
                total_size: Service::from_container_secs(size),
                remaining: Service::from_container_secs(size),
            }),
        }
    }

    #[test]
    fn wfp3_ages_short_jobs_fastest() {
        // Equal width, equal wait: the shorter job's runtime denominator
        // is smaller, so its score is higher.
        let mut sched = Backfill::wfp3(0.0, 0);
        let jobs = vec![view(0, 1_000.0, 10, 0), view(1, 10.0, 10, 0)];
        let ctx = SchedContext::new(SimTime::from_secs(100), 5, &jobs);
        let plan = sched.allocate(&ctx);
        assert_eq!(plan.entries()[0].0, JobId::new(1));
    }

    #[test]
    fn wfp3_prefers_wider_jobs_at_equal_per_task_runtime() {
        // Same per-task runtime (size/procs), same wait — the ×procs term
        // favors the wider job.
        let mut sched = Backfill::wfp3(0.0, 0);
        let jobs = vec![view(0, 100.0, 10, 0), view(1, 400.0, 40, 0)];
        let ctx = SchedContext::new(SimTime::from_secs(100), 5, &jobs);
        let plan = sched.allocate(&ctx);
        assert_eq!(plan.entries()[0].0, JobId::new(1));
    }

    #[test]
    fn unicef_prefers_narrow_short_jobs() {
        // UNICEF discounts width: at equal per-task runtime the narrow job
        // wins (opposite of WFP3's tie-break direction).
        let mut sched = Backfill::unicef(0.0, 0);
        let jobs = vec![view(0, 100.0, 10, 0), view(1, 400.0, 40, 0)];
        let ctx = SchedContext::new(SimTime::from_secs(100), 5, &jobs);
        let plan = sched.allocate(&ctx);
        assert_eq!(plan.entries()[0].0, JobId::new(0));
    }

    #[test]
    fn zero_wait_falls_back_to_arrival_order() {
        // At the arrival instant every score is 0 — ties resolve by
        // arrival then id, so admission order holds.
        let mut sched = Backfill::wfp3(0.0, 0);
        let jobs = vec![view(0, 1_000.0, 10, 0), view(1, 10.0, 10, 0)];
        let ctx = SchedContext::new(SimTime::ZERO, 5, &jobs);
        let plan = sched.allocate(&ctx);
        assert_eq!(plan.entries()[0].0, JobId::new(0));
    }

    #[test]
    fn estimates_are_frozen_at_first_contact() {
        let mut sched = Backfill::unicef(2.0, 9);
        let v = view(3, 500.0, 10, 0);
        let first = { sched.estimate(&v) };
        // Same job, different apparent size: the frozen estimate stands.
        let mut shrunk = v;
        shrunk.oracle = Some(OracleInfo {
            total_size: Service::from_container_secs(1.0),
            remaining: Service::from_container_secs(1.0),
        });
        assert_eq!(sched.estimate(&shrunk), first);
    }

    #[test]
    fn snapshot_round_trips_bit_identically() {
        let mut sched = Backfill::wfp3(1.0, 5);
        let jobs = vec![
            view(0, 500.0, 10, 0),
            view(1, 5.0, 10, 0),
            view(2, 50.0, 10, 0),
        ];
        sched.allocate(&SchedContext::new(SimTime::from_secs(10), 5, &jobs));
        let snap = sched.snapshot_state().unwrap();
        let mut restored = Backfill::wfp3(1.0, 5);
        restored.restore_state(&snap).unwrap();
        assert_eq!(restored.snapshot_state().unwrap(), snap);
        let ctx = SchedContext::new(SimTime::from_secs(20), 5, &jobs);
        assert_eq!(restored.allocate(&ctx), sched.allocate(&ctx));
    }

    #[test]
    fn malformed_state_is_rejected() {
        let mut sched = Backfill::unicef(0.0, 0);
        assert!(sched.restore_state("not json").is_err());
        sched.check_consistency().unwrap();
    }
}
