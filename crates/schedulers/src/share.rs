//! Weighted max-min fair sharing with demand caps.
//!
//! Both the Fair baseline (weights = job priorities) and LAS_MQ's
//! across-queue sharing (weights = queue weights) need the same primitive:
//! split an integer pool of containers among parties in proportion to
//! weights, never giving a party more than its demand, and redistributing
//! what capped parties cannot use (progressive filling / water-filling).

/// One party in a weighted share computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShareRequest {
    /// The most containers the party can use.
    pub demand: u32,
    /// The party's weight (≥ 0; zero-weight parties only receive leftovers
    /// no positive-weight party can absorb — i.e. nothing, since demands
    /// cap first).
    pub weight: f64,
}

impl ShareRequest {
    /// A request with the given demand and weight.
    pub fn new(demand: u32, weight: f64) -> Self {
        ShareRequest { demand, weight }
    }
}

/// Reusable working memory for [`weighted_shares_into`], so schedulers
/// that compute shares every scheduling pass pay no per-pass allocations.
/// The buffers hold no meaningful state between calls.
#[derive(Debug, Clone, Default)]
pub struct ShareScratch {
    alloc: Vec<f64>,
    active: Vec<usize>,
    capped: Vec<usize>,
    order: Vec<usize>,
}

/// Splits `capacity` containers among `requests` by weighted max-min
/// fairness with demand caps.
///
/// Guarantees:
///
/// * no party exceeds its demand,
/// * the total allocated equals `min(capacity, Σ demand)` (work
///   conservation),
/// * parties that are not demand-capped receive containers in proportion
///   to their weights, up to integer rounding (largest-remainder).
///
/// # Panics
///
/// Panics if any weight is negative or not finite.
///
/// # Examples
///
/// ```
/// use lasmq_schedulers::share::{weighted_shares, ShareRequest};
///
/// // Priorities 1 and 3 over 8 containers, ample demand: 2 vs 6.
/// let alloc = weighted_shares(
///     8,
///     &[ShareRequest::new(100, 1.0), ShareRequest::new(100, 3.0)],
/// );
/// assert_eq!(alloc, vec![2, 6]);
/// ```
pub fn weighted_shares(capacity: u32, requests: &[ShareRequest]) -> Vec<u32> {
    let mut out = Vec::new();
    weighted_shares_into(capacity, requests, &mut ShareScratch::default(), &mut out);
    out
}

/// [`weighted_shares`] into a caller-owned output buffer with caller-owned
/// scratch space — identical results, zero allocations once the buffers
/// are warm.
///
/// # Panics
///
/// Panics if any weight is negative or not finite.
pub fn weighted_shares_into(
    capacity: u32,
    requests: &[ShareRequest],
    scratch: &mut ShareScratch,
    out: &mut Vec<u32>,
) {
    for r in requests {
        assert!(
            r.weight.is_finite() && r.weight >= 0.0,
            "weights must be non-negative"
        );
    }
    let n = requests.len();
    let alloc = &mut scratch.alloc;
    alloc.clear();
    alloc.resize(n, 0.0_f64);
    let active = &mut scratch.active;
    active.clear();
    active.extend((0..n).filter(|&i| requests[i].demand > 0 && requests[i].weight > 0.0));
    let mut remaining =
        (capacity as f64).min(requests.iter().map(|r| r.demand as f64).sum::<f64>());

    // Progressive filling: repeatedly hand out proportional shares; parties
    // that hit their demand are frozen and their unused share recirculates.
    while remaining > 1e-9 && !active.is_empty() {
        let wsum: f64 = active.iter().map(|&i| requests[i].weight).sum();
        if wsum <= 0.0 {
            break;
        }
        // The binding party is the one that fills up first at the current
        // rate; cap all parties that would overfill, then recompute.
        let capped = &mut scratch.capped;
        capped.clear();
        let mut handed_out = 0.0;
        for &i in &*active {
            let share = remaining * requests[i].weight / wsum;
            let room = requests[i].demand as f64 - alloc[i];
            if share >= room - 1e-12 {
                alloc[i] = requests[i].demand as f64;
                handed_out += room;
                capped.push(i);
            }
        }
        if capped.is_empty() {
            // No one caps: distribute everything and finish.
            for &i in &*active {
                alloc[i] += remaining * requests[i].weight / wsum;
            }
            remaining = 0.0;
        } else {
            remaining -= handed_out;
            active.retain(|i| !capped.contains(i));
        }
    }

    round_largest_remainder(capacity, requests, alloc, &mut scratch.order, out);
}

/// Rounds fractional allocations to integers: floor everything, then hand
/// leftover containers to the largest fractional parts that still have
/// demand headroom.
fn round_largest_remainder(
    capacity: u32,
    requests: &[ShareRequest],
    alloc: &[f64],
    order: &mut Vec<usize>,
    ints: &mut Vec<u32>,
) {
    ints.clear();
    ints.extend(
        alloc
            .iter()
            .zip(requests)
            .map(|(&a, r)| (a.floor() as u32).min(r.demand)),
    );
    let target: u32 = {
        let total_demand: u64 = requests.iter().map(|r| r.demand as u64).sum();
        (capacity as u64).min(total_demand) as u32
    };
    let mut assigned: u32 = ints.iter().sum();
    if assigned >= target {
        return;
    }
    order.clear();
    order.extend(0..alloc.len());
    order.sort_by(|&a, &b| {
        let fa = alloc[a] - alloc[a].floor();
        let fb = alloc[b] - alloc[b].floor();
        fb.total_cmp(&fa).then(a.cmp(&b))
    });
    // First pass by remainder, then round-robin any residue (can happen
    // when floors were demand-clamped).
    loop {
        let before = assigned;
        for &i in &*order {
            if assigned == target {
                return;
            }
            if ints[i] < requests[i].demand {
                ints[i] += 1;
                assigned += 1;
            }
        }
        if assigned == before {
            return; // all demands met
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total(v: &[u32]) -> u32 {
        v.iter().sum()
    }

    #[test]
    fn equal_weights_split_evenly() {
        let alloc = weighted_shares(9, &[ShareRequest::new(100, 1.0); 3]);
        assert_eq!(alloc, vec![3, 3, 3]);
    }

    #[test]
    fn weights_bias_the_split() {
        let alloc = weighted_shares(
            10,
            &[ShareRequest::new(100, 1.0), ShareRequest::new(100, 4.0)],
        );
        assert_eq!(alloc, vec![2, 8]);
    }

    #[test]
    fn demand_caps_redistribute() {
        // Party 0 only wants 1; the rest flows to party 1.
        let alloc = weighted_shares(
            10,
            &[ShareRequest::new(1, 1.0), ShareRequest::new(100, 1.0)],
        );
        assert_eq!(alloc, vec![1, 9]);
    }

    #[test]
    fn work_conserving_up_to_demand() {
        let reqs = [ShareRequest::new(3, 1.0), ShareRequest::new(2, 2.0)];
        let alloc = weighted_shares(100, &reqs);
        assert_eq!(alloc, vec![3, 2]); // total demand 5 < capacity
        let alloc = weighted_shares(4, &reqs);
        assert_eq!(total(&alloc), 4); // capacity binds
    }

    #[test]
    fn never_exceeds_demand_or_capacity() {
        let reqs = [
            ShareRequest::new(7, 0.5),
            ShareRequest::new(0, 3.0),
            ShareRequest::new(13, 1.5),
            ShareRequest::new(2, 1.0),
        ];
        for cap in 0..30 {
            let alloc = weighted_shares(cap, &reqs);
            for (a, r) in alloc.iter().zip(&reqs) {
                assert!(*a <= r.demand);
            }
            let expected = cap.min(reqs.iter().map(|r| r.demand).sum());
            assert_eq!(total(&alloc), expected, "capacity {cap}");
        }
    }

    #[test]
    fn zero_weight_gets_nothing_while_others_starve() {
        let alloc = weighted_shares(5, &[ShareRequest::new(10, 0.0), ShareRequest::new(10, 1.0)]);
        assert_eq!(alloc, vec![0, 5]);
    }

    #[test]
    fn empty_request_list() {
        assert!(weighted_shares(10, &[]).is_empty());
    }

    #[test]
    fn rounding_is_stable_and_exact() {
        // 10 containers over 3 equal parties: 4/3/3 (largest remainder,
        // ties by index).
        let alloc = weighted_shares(10, &[ShareRequest::new(100, 1.0); 3]);
        assert_eq!(total(&alloc), 10);
        assert!(alloc.iter().all(|&a| a == 3 || a == 4));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_panics() {
        let _ = weighted_shares(1, &[ShareRequest::new(1, -1.0)]);
    }
}
