//! The Fair baseline.
//!
//! YARN's Fair scheduler divides the cluster among running jobs in
//! proportion to their weights; in the paper's experiments "the priorities
//! of jobs are randomly generated integers ranging from 1 to 5" (§V-A) and
//! act as the weights. Demand-capped weighted max-min fairness makes the
//! allocation work-conserving: what a small job cannot use flows to the
//! others.
//!
//! Under many concurrently running large jobs, Fair degrades to processor
//! sharing — the failure mode LAS_MQ is designed to avoid.

use lasmq_simulator::{AllocationPlan, SchedContext, Scheduler};

use crate::share::{weighted_shares, ShareRequest};

/// Serialized snapshot of the Fair scheduler. Fair recomputes shares from
/// scratch every pass, so the only thing worth checking on restore is that
/// the weighting mode matches the snapshotted run.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct FairState {
    ignore_priorities: bool,
}

/// Priority-weighted fair sharing.
///
/// # Examples
///
/// ```
/// use lasmq_schedulers::Fair;
/// use lasmq_simulator::Scheduler;
///
/// assert_eq!(Fair::new().name(), "FAIR");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Fair {
    ignore_priorities: bool,
}

impl Fair {
    /// Fair sharing weighted by job priorities (the paper's configuration).
    pub fn new() -> Self {
        Fair {
            ignore_priorities: false,
        }
    }

    /// Plain equal-weight fair sharing, ignoring priorities.
    pub fn unweighted() -> Self {
        Fair {
            ignore_priorities: true,
        }
    }
}

impl Scheduler for Fair {
    fn name(&self) -> &str {
        "FAIR"
    }

    fn snapshot_state(&self) -> Option<String> {
        let state = FairState {
            ignore_priorities: self.ignore_priorities,
        };
        Some(serde_json::to_string(&state).expect("FAIR state serialization cannot fail"))
    }

    fn restore_state(&mut self, state: &str) -> Result<(), String> {
        let state: FairState =
            serde_json::from_str(state).map_err(|e| format!("malformed FAIR state: {e}"))?;
        if state.ignore_priorities != self.ignore_priorities {
            return Err(format!(
                "snapshot was taken with ignore_priorities={}, this instance uses {}",
                state.ignore_priorities, self.ignore_priorities
            ));
        }
        Ok(())
    }

    fn allocate(&mut self, ctx: &SchedContext<'_>) -> AllocationPlan {
        let jobs = ctx.jobs();
        // YARN's fair policy orders apps by usage over weight; replicating
        // that here sends integer-rounding surplus containers to the jobs
        // furthest below their fair share, so equal jobs rotate (processor
        // sharing) rather than the first N monopolizing the rounding bonus.
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        order.sort_by(|&a, &b| {
            let usage = |i: usize| {
                let weight = if self.ignore_priorities {
                    1.0
                } else {
                    f64::from(jobs[i].priority)
                };
                jobs[i].attained.as_container_secs() / weight
            };
            usage(a)
                .total_cmp(&usage(b))
                .then_with(|| jobs[a].admitted_at.cmp(&jobs[b].admitted_at))
                .then_with(|| jobs[a].id.cmp(&jobs[b].id))
        });
        let requests: Vec<ShareRequest> = order
            .iter()
            .map(|&i| {
                let j = &jobs[i];
                let weight = if self.ignore_priorities {
                    1.0
                } else {
                    f64::from(j.priority)
                };
                ShareRequest::new(j.max_useful_allocation(), weight)
            })
            .collect();
        let shares = weighted_shares(ctx.total_containers(), &requests);
        order
            .into_iter()
            .zip(shares)
            .filter(|(_, s)| *s > 0)
            .map(|(i, s)| (jobs[i].id, s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasmq_simulator::{JobId, JobView, Service, SimTime};

    fn view(id: u32, priority: u8, unstarted: u32) -> JobView {
        JobView {
            id: JobId::new(id),
            arrival: SimTime::ZERO,
            admitted_at: SimTime::ZERO,
            priority,
            attained: Service::ZERO,
            attained_stage: Service::ZERO,
            stage_index: 0,
            stage_count: 1,
            stage_progress: 0.0,
            remaining_tasks: unstarted,
            unstarted_tasks: unstarted,
            containers_per_task: 1,
            held: 0,
            oracle: None,
        }
    }

    #[test]
    fn splits_by_priority() {
        let jobs = vec![view(0, 1, 100), view(1, 4, 100)];
        let ctx = SchedContext::new(SimTime::ZERO, 10, &jobs);
        let plan = Fair::new().allocate(&ctx);
        assert_eq!(plan.target_for(JobId::new(0)), Some(2));
        assert_eq!(plan.target_for(JobId::new(1)), Some(8));
    }

    #[test]
    fn unweighted_splits_evenly() {
        let jobs = vec![view(0, 1, 100), view(1, 5, 100)];
        let ctx = SchedContext::new(SimTime::ZERO, 10, &jobs);
        let plan = Fair::unweighted().allocate(&ctx);
        assert_eq!(plan.target_for(JobId::new(0)), Some(5));
        assert_eq!(plan.target_for(JobId::new(1)), Some(5));
    }

    #[test]
    fn small_jobs_release_their_surplus() {
        let jobs = vec![view(0, 5, 1), view(1, 1, 100)];
        let ctx = SchedContext::new(SimTime::ZERO, 10, &jobs);
        let plan = Fair::new().allocate(&ctx);
        // Job 0 can only use 1; job 1 absorbs the other 9.
        assert_eq!(plan.target_for(JobId::new(0)), Some(1));
        assert_eq!(plan.target_for(JobId::new(1)), Some(9));
    }

    #[test]
    fn work_conserving_total() {
        let jobs = vec![view(0, 2, 50), view(1, 3, 50), view(2, 5, 50)];
        let ctx = SchedContext::new(SimTime::ZERO, 64, &jobs);
        let plan = Fair::new().allocate(&ctx);
        assert_eq!(plan.total_target(), 64);
    }
}
