//! A learned linear scheduling policy over runtime-observable features.
//!
//! The paper's premise is that good scheduling needs no prior size
//! information; the natural follow-up question is whether a *learned*
//! policy can close the gap to the oracle baselines using only the same
//! observable state. This module holds the shared substrate for that
//! experiment: a fixed-width per-job [feature vector](job_features) built
//! purely from [`JobView`] fields (never from the oracle), a versioned
//! [`LinearPolicy`] over those features, and a [`LearnedScheduler`] that
//! ranks jobs by policy score each pass and grants greedily in rank order
//! (the same ordered-grant shape as LAS).
//!
//! The `lasmq-env` crate extracts the *same* features for its
//! observations, and the `ext_train` experiment in `lasmq-experiments`
//! searches the weight space — so the three layers agree on one feature
//! definition by construction.

use std::collections::BTreeMap;

use lasmq_simulator::{AllocationPlan, JobId, JobView, SchedContext, Scheduler, SimTime};
use serde::{Deserialize, Serialize};

/// Version tag carried by serialized [`LinearPolicy`] artifacts. Bump on
/// any change to [`FEATURE_COUNT`] or the meaning of a feature slot.
pub const POLICY_SCHEMA_VERSION: u32 = 1;

/// Width of the per-job feature vector.
pub const FEATURE_COUNT: usize = 12;

/// Human-readable names for each feature slot, index-aligned with
/// [`job_features`]. Useful for printing trained weights.
pub const FEATURE_NAMES: [&str; FEATURE_COUNT] = [
    "bias",
    "log1p_attained",
    "log1p_attained_stage",
    "stage_progress",
    "stage_fraction",
    "log1p_wait_secs",
    "log1p_remaining_tasks",
    "log1p_unstarted_tasks",
    "log1p_held",
    "log1p_remaining_demand",
    "cluster_occupancy",
    "log1p_active_jobs",
];

/// Cluster-level context for feature extraction: the signals that are the
/// same for every job in a pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterFeatures {
    /// Fraction of the cluster's containers currently held by jobs, in
    /// `[0, 1]`.
    pub occupancy: f64,
    /// Number of admitted, unfinished jobs.
    pub active_jobs: usize,
}

impl ClusterFeatures {
    /// Derives the cluster features a scheduler can observe from its pass
    /// context: summed holdings over capacity, and the job count.
    pub fn from_context(ctx: &SchedContext<'_>) -> Self {
        let held: u64 = ctx.jobs().iter().map(|j| j.held as u64).sum();
        let capacity = ctx.total_containers().max(1) as f64;
        ClusterFeatures {
            occupancy: (held as f64 / capacity).min(1.0),
            active_jobs: ctx.jobs().len(),
        }
    }
}

/// Extracts the per-job feature vector at time `now`.
///
/// Every input is observable at runtime in a real cluster (see the
/// `lasmq_simulator::sched` module docs); [`JobView::oracle`] is never
/// read, so a learned policy cannot cheat. Magnitudes are compressed with
/// `ln(1 + x)` so a single weight spans small and large jobs.
pub fn job_features(
    view: &JobView,
    now: SimTime,
    cluster: &ClusterFeatures,
) -> [f64; FEATURE_COUNT] {
    let wait_secs = now.saturating_since(view.admitted_at).as_secs_f64();
    [
        1.0,
        view.attained.as_container_secs().ln_1p(),
        view.attained_stage.as_container_secs().ln_1p(),
        view.stage_progress,
        (view.stage_index + 1) as f64 / view.stage_count.max(1) as f64,
        wait_secs.ln_1p(),
        f64::from(view.remaining_tasks).ln_1p(),
        f64::from(view.unstarted_tasks).ln_1p(),
        f64::from(view.held).ln_1p(),
        f64::from(view.remaining_demand()).ln_1p(),
        cluster.occupancy,
        (cluster.active_jobs as f64).ln_1p(),
    ]
}

/// A linear scoring policy: `score(job) = w · features(job)`, higher
/// scores served first.
///
/// The serialized form is the versioned JSON artifact `ext_train` emits
/// and `repro --policy FILE` loads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearPolicy {
    /// Artifact schema version ([`POLICY_SCHEMA_VERSION`]).
    pub schema: u32,
    /// One weight per feature slot, in [`FEATURE_NAMES`] order.
    pub weights: Vec<f64>,
}

impl LinearPolicy {
    /// A policy with the given weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is not [`FEATURE_COUNT`] long.
    pub fn new(weights: Vec<f64>) -> Self {
        assert_eq!(
            weights.len(),
            FEATURE_COUNT,
            "a linear policy needs exactly {FEATURE_COUNT} weights"
        );
        LinearPolicy {
            schema: POLICY_SCHEMA_VERSION,
            weights,
        }
    }

    /// The all-zero policy (every job scores 0; ties resolve to admission
    /// order, so it degenerates to FIFO).
    pub fn zeros() -> Self {
        LinearPolicy::new(vec![0.0; FEATURE_COUNT])
    }

    /// The LAS-imitating policy: a single `-1` weight on attained
    /// service, so the least-served job scores highest. The conventional
    /// search seed — the trained policy should only improve on it.
    pub fn las_like() -> Self {
        let mut weights = vec![0.0; FEATURE_COUNT];
        weights[1] = -1.0;
        LinearPolicy::new(weights)
    }

    /// The policy's score for a feature vector (NaN-tolerant: comparisons
    /// downstream use total ordering, so a corrupt weight degrades rank
    /// quality, never consistency). Accepts any slice; zipping stops at
    /// the shorter of weights and features.
    pub fn score(&self, features: &[f64]) -> f64 {
        self.weights
            .iter()
            .zip(features.iter())
            .map(|(w, x)| w * x)
            .sum()
    }

    /// Serializes the policy artifact.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("policy serialization cannot fail")
    }

    /// Parses a policy artifact, validating schema version and width.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed JSON, a foreign
    /// schema version, or a wrong weight count.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let policy: LinearPolicy =
            serde_json::from_str(json).map_err(|e| format!("malformed policy JSON: {e}"))?;
        if policy.schema != POLICY_SCHEMA_VERSION {
            return Err(format!(
                "policy schema {} unsupported (this build reads {POLICY_SCHEMA_VERSION})",
                policy.schema
            ));
        }
        if policy.weights.len() != FEATURE_COUNT {
            return Err(format!(
                "policy has {} weights, expected {FEATURE_COUNT}",
                policy.weights.len()
            ));
        }
        Ok(policy)
    }
}

/// Serialized snapshot of the learned scheduler's mutable state: the
/// admission sequence numbers that anchor its deterministic tie-break.
/// Weights are configuration (like `LasMqConfig`), so they are *checked*,
/// not restored — restoring under a different policy is a setup error.
#[derive(Debug, Serialize, Deserialize)]
struct LearnedState {
    weights: Vec<f64>,
    seqs: Vec<(JobId, u64)>,
    next_seq: u64,
}

/// A scheduler ranking jobs by a [`LinearPolicy`] score each pass.
///
/// Ties (e.g. under the all-zero policy) break by admission sequence and
/// then job id, so the scheduler is deterministic for *any* weight vector
/// — including corrupt ones (NaN/∞), which degrade ranking quality but
/// can never violate engine invariants.
///
/// # Examples
///
/// ```
/// use lasmq_schedulers::{LearnedScheduler, LinearPolicy};
/// use lasmq_simulator::Scheduler;
///
/// let sched = LearnedScheduler::new(LinearPolicy::las_like());
/// assert_eq!(sched.name(), "LEARNED");
/// ```
#[derive(Debug, Clone)]
pub struct LearnedScheduler {
    policy: LinearPolicy,
    seq: BTreeMap<JobId, u64>,
    next_seq: u64,
}

impl LearnedScheduler {
    /// A learned scheduler executing `policy`.
    pub fn new(policy: LinearPolicy) -> Self {
        LearnedScheduler {
            policy,
            seq: BTreeMap::new(),
            next_seq: 0,
        }
    }

    /// The policy being executed.
    pub fn policy(&self) -> &LinearPolicy {
        &self.policy
    }
}

impl Scheduler for LearnedScheduler {
    fn name(&self) -> &str {
        "LEARNED"
    }

    fn on_job_admitted(&mut self, view: &JobView, _now: SimTime) {
        let seq = self.next_seq;
        self.seq.entry(view.id).or_insert(seq);
        self.next_seq += 1;
    }

    fn on_job_completed(&mut self, job: JobId, _now: SimTime) {
        self.seq.remove(&job);
    }

    fn allocate(&mut self, ctx: &SchedContext<'_>) -> AllocationPlan {
        let jobs = ctx.jobs();
        let cluster = ClusterFeatures::from_context(ctx);
        let now = ctx.now();
        let scores: Vec<f64> = jobs
            .iter()
            .map(|j| self.policy.score(&job_features(j, now, &cluster)))
            .collect();
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        order.sort_by(|&a, &b| {
            // Higher score first; total_cmp keeps NaN scores orderable.
            scores[b]
                .total_cmp(&scores[a])
                .then_with(|| {
                    let seq = |i: usize| self.seq.get(&jobs[i].id).copied().unwrap_or(u64::MAX);
                    seq(a).cmp(&seq(b))
                })
                .then_with(|| jobs[a].id.cmp(&jobs[b].id))
        });
        let mut plan = AllocationPlan::new();
        let mut budget = ctx.total_containers();
        for idx in order {
            if budget == 0 {
                break;
            }
            let want = jobs[idx].max_useful_allocation().min(budget);
            if want > 0 {
                plan.push(jobs[idx].id, want);
                budget -= want;
            }
        }
        plan
    }

    fn snapshot_state(&self) -> Option<String> {
        let state = LearnedState {
            weights: self.policy.weights.clone(),
            seqs: self.seq.iter().map(|(&id, &s)| (id, s)).collect(),
            next_seq: self.next_seq,
        };
        Some(serde_json::to_string(&state).expect("LEARNED state serialization cannot fail"))
    }

    fn restore_state(&mut self, state: &str) -> Result<(), String> {
        let state: LearnedState =
            serde_json::from_str(state).map_err(|e| format!("malformed LEARNED state: {e}"))?;
        if state.weights.len() != self.policy.weights.len() {
            return Err(format!(
                "snapshot policy has {} weights, this instance has {}",
                state.weights.len(),
                self.policy.weights.len()
            ));
        }
        // Bitwise comparison: NaN weights must round-trip too.
        if state
            .weights
            .iter()
            .zip(&self.policy.weights)
            .any(|(a, b)| a.to_bits() != b.to_bits())
        {
            return Err("snapshot was taken under a different policy weight vector".into());
        }
        let mut seq = BTreeMap::new();
        for (id, s) in state.seqs {
            if s >= state.next_seq {
                return Err(format!(
                    "job {id} has seq {s} >= next_seq {}",
                    state.next_seq
                ));
            }
            if seq.insert(id, s).is_some() {
                return Err(format!("job {id} appears twice in the sequence table"));
            }
        }
        self.seq = seq;
        self.next_seq = state.next_seq;
        Ok(())
    }

    fn check_consistency(&self) -> Result<(), String> {
        let mut seen = std::collections::BTreeSet::new();
        for (id, &s) in &self.seq {
            if s >= self.next_seq {
                return Err(format!(
                    "job {id} has admission seq {s} >= next_seq {}",
                    self.next_seq
                ));
            }
            if !seen.insert(s) {
                return Err(format!("admission seq {s} assigned to more than one job"));
            }
        }
        if self.policy.weights.len() != FEATURE_COUNT {
            return Err(format!(
                "policy width {} != feature width {FEATURE_COUNT}",
                self.policy.weights.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasmq_simulator::Service;

    fn view(id: u32, attained: f64, unstarted: u32) -> JobView {
        JobView {
            id: JobId::new(id),
            arrival: SimTime::ZERO,
            admitted_at: SimTime::from_secs(id as u64),
            priority: 1,
            attained: Service::from_container_secs(attained),
            attained_stage: Service::from_container_secs(attained),
            stage_index: 0,
            stage_count: 1,
            stage_progress: 0.0,
            remaining_tasks: unstarted,
            unstarted_tasks: unstarted,
            containers_per_task: 1,
            held: 0,
            oracle: None,
        }
    }

    #[test]
    fn las_like_policy_matches_las_ordering() {
        let jobs = vec![view(0, 50.0, 100), view(1, 5.0, 100), view(2, 20.0, 100)];
        let ctx = SchedContext::new(SimTime::ZERO, 10, &jobs);
        let plan = LearnedScheduler::new(LinearPolicy::las_like()).allocate(&ctx);
        assert_eq!(plan.entries(), &[(JobId::new(1), 10)]);
    }

    #[test]
    fn zero_policy_degenerates_to_admission_order() {
        let mut sched = LearnedScheduler::new(LinearPolicy::zeros());
        let jobs = vec![view(1, 0.0, 100), view(0, 0.0, 100)];
        for j in &jobs {
            sched.on_job_admitted(j, SimTime::ZERO);
        }
        let ctx = SchedContext::new(SimTime::ZERO, 4, &jobs);
        let plan = sched.allocate(&ctx);
        // Job 1 was admitted first in this fixture, so it ranks first.
        assert_eq!(plan.entries()[0].0, JobId::new(1));
    }

    #[test]
    fn surplus_flows_down_the_ranking() {
        let jobs = vec![view(0, 0.0, 3), view(1, 10.0, 100)];
        let ctx = SchedContext::new(SimTime::ZERO, 10, &jobs);
        let plan = LearnedScheduler::new(LinearPolicy::las_like()).allocate(&ctx);
        assert_eq!(plan.entries(), &[(JobId::new(0), 3), (JobId::new(1), 7)]);
    }

    #[test]
    fn nan_weight_still_produces_a_full_deterministic_plan() {
        let mut weights = vec![0.0; FEATURE_COUNT];
        weights[1] = f64::NAN;
        let mut sched = LearnedScheduler::new(LinearPolicy::new(weights));
        let jobs = vec![view(0, 3.0, 50), view(1, 1.0, 50), view(2, 2.0, 50)];
        for j in &jobs {
            sched.on_job_admitted(j, SimTime::ZERO);
        }
        let ctx = SchedContext::new(SimTime::ZERO, 30, &jobs);
        let plan = sched.allocate(&ctx);
        let repeat = sched.allocate(&ctx);
        assert_eq!(plan, repeat, "NaN scores must not destabilize the ranking");
        assert_eq!(plan.total_target(), 30, "plan must stay work-conserving");
        assert!(sched.check_consistency().is_ok());
    }

    #[test]
    fn state_round_trips() {
        let mut a = LearnedScheduler::new(LinearPolicy::las_like());
        for j in [view(3, 0.0, 1), view(7, 0.0, 1)] {
            a.on_job_admitted(&j, SimTime::ZERO);
        }
        let state = a.snapshot_state().unwrap();
        let mut b = LearnedScheduler::new(LinearPolicy::las_like());
        b.restore_state(&state).unwrap();
        assert_eq!(b.snapshot_state().unwrap(), state);
        assert!(b.check_consistency().is_ok());
    }

    #[test]
    fn restore_rejects_policy_mismatch_and_corrupt_seqs() {
        let a = LearnedScheduler::new(LinearPolicy::las_like());
        let state = a.snapshot_state().unwrap();
        let mut b = LearnedScheduler::new(LinearPolicy::zeros());
        assert!(b.restore_state(&state).is_err());

        let mut c = LearnedScheduler::new(LinearPolicy::las_like());
        assert!(c.restore_state("not json").is_err());
        let bad = serde_json::to_string(&LearnedState {
            weights: LinearPolicy::las_like().weights,
            seqs: vec![(JobId::new(0), 5)],
            next_seq: 3,
        })
        .unwrap();
        assert!(c.restore_state(&bad).is_err());
    }

    #[test]
    fn policy_artifact_round_trips_and_validates() {
        let policy = LinearPolicy::las_like();
        let json = policy.to_json();
        assert_eq!(LinearPolicy::from_json(&json).unwrap(), policy);
        assert!(LinearPolicy::from_json("{}").is_err());
        let foreign = json.replacen(
            &format!("\"schema\":{POLICY_SCHEMA_VERSION}"),
            "\"schema\":999",
            1,
        );
        assert!(LinearPolicy::from_json(&foreign).is_err());
    }

    #[test]
    fn features_never_read_the_oracle() {
        let mut v = view(0, 10.0, 5);
        let cluster = ClusterFeatures {
            occupancy: 0.5,
            active_jobs: 3,
        };
        let without = job_features(&v, SimTime::from_secs(20), &cluster);
        v.oracle = Some(lasmq_simulator::OracleInfo {
            total_size: Service::from_container_secs(1e6),
            remaining: Service::from_container_secs(9e5),
        });
        let with = job_features(&v, SimTime::from_secs(20), &cluster);
        assert_eq!(without, with);
        assert_eq!(without.len(), FEATURE_COUNT);
    }
}
