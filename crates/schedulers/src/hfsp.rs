//! An HFSP-style scheduler: FSP with progressive estimate refinement and
//! aging.
//!
//! HFSP ("Hadoop Fair Sojourn Protocol", Pastorelli et al., *Practical
//! Size-based Scheduling for MapReduce Workloads*) adapts FSP to a world
//! where sizes are *guessed*: each job starts with a rough size estimate,
//! the estimate is refined as the job's tasks actually complete, and
//! waiting jobs are *aged* so an estimation mistake cannot starve them
//! forever. This implementation is an HFSP-style variant on the same
//! virtual processor-sharing machinery as [`Fsp`](crate::Fsp):
//!
//! * **Initial guess** — the oracle size corrupted by the shared
//!   [`SizeNoise`] model (`sigma = 0` = exact).
//! * **Progressive refinement** — once the current stage's observed
//!   progress clears [`MIN_PROGRESS`], the stage's size is re-projected
//!   from attained service (`attained_stage / progress`, the same
//!   projection LAS_MQ's stage awareness uses), prior stages are counted
//!   at their observed cost, and unobserved future stages keep a prorated
//!   share of the initial guess. The virtual remaining moves by the
//!   estimate delta (never below zero).
//! * **Aging** — jobs observed *waiting* (zero containers held while
//!   wanting more) progress through the virtual system at
//!   `1 + AGING_WEIGHT` times the equal share, so a job stuck behind a
//!   mis-estimated giant virtually finishes sooner and reclaims priority.
//!
//! All state advances only inside `allocate` from pass-visible data, so
//! the engine and the reference executor make bit-identical decisions.

use lasmq_simulator::{AllocationPlan, JobId, JobView, SchedContext, Scheduler, SimTime};

use crate::noise::SizeNoise;

/// Observed stage progress below which the initial estimate is trusted
/// unrefined (same spirit as LAS_MQ's `min_progress` guard: a division by
/// near-zero progress projects garbage).
pub const MIN_PROGRESS: f64 = 0.05;

/// Extra virtual-progress weight for waiting jobs (a waiting job ages at
/// `1 + AGING_WEIGHT` times the equal share).
pub const AGING_WEIGHT: f64 = 1.0;

/// One job's state in the virtual system.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct VirtualJob {
    /// The job id (`u32` form, for the serialized snapshot).
    job: u32,
    /// The frozen initial size guess, container-secs.
    initial_estimate: f64,
    /// The current (refined) total-size estimate, container-secs.
    refined_estimate: f64,
    /// Service still owed in the virtual system, container-secs.
    virtual_remaining: f64,
    /// Virtual completion rank, assigned when `virtual_remaining` hits 0.
    finished_rank: Option<u64>,
    /// Whether the job really completed (virtual ghost; see [`Fsp`]).
    departed: bool,
    /// Whether the job was waiting (held nothing, wanted more) at the last
    /// pass — the aging trigger for the *next* virtual interval.
    waiting: bool,
}

impl VirtualJob {
    fn weight(&self) -> f64 {
        if self.waiting && !self.departed {
            1.0 + AGING_WEIGHT
        } else {
            1.0
        }
    }
}

/// The HFSP-style scheduler.
///
/// # Examples
///
/// ```
/// use lasmq_schedulers::Hfsp;
/// use lasmq_simulator::Scheduler;
///
/// let hfsp = Hfsp::new(1.0, 7);
/// assert!(hfsp.requires_oracle());
/// assert_eq!(hfsp.name(), "HFSP");
/// ```
#[derive(Debug, Clone)]
pub struct Hfsp {
    noise: SizeNoise,
    /// Virtual jobs, sorted by job id (unique), for byte-stable snapshots
    /// and deterministic iteration.
    jobs: Vec<VirtualJob>,
    /// Simulation instant the virtual system has been advanced to.
    advanced_to: SimTime,
    /// Next virtual completion rank to assign.
    next_rank: u64,
}

impl Hfsp {
    /// HFSP whose initial guesses carry log-normal noise of scale `sigma`
    /// (`0` = exact), with `seed` pinning the per-job draws.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn new(sigma: f64, seed: u64) -> Self {
        Hfsp {
            noise: SizeNoise::new(sigma, 0.0, seed),
            jobs: Vec::new(),
            advanced_to: SimTime::ZERO,
            next_rank: 0,
        }
    }

    fn position(&self, job: JobId) -> Result<usize, usize> {
        self.jobs.binary_search_by_key(&u32::from(job), |v| v.job)
    }

    fn admit_new(&mut self, views: &[JobView]) {
        for view in views {
            if let Err(slot) = self.position(view.id) {
                let true_size = view
                    .oracle
                    .expect("engine guarantees oracle info for oracle schedulers")
                    .total_size;
                let estimate = self.noise.estimate(view.id, true_size).as_container_secs();
                self.jobs.insert(
                    slot,
                    VirtualJob {
                        job: u32::from(view.id),
                        initial_estimate: estimate,
                        refined_estimate: estimate,
                        virtual_remaining: estimate,
                        finished_rank: None,
                        departed: false,
                        waiting: false,
                    },
                );
            }
        }
    }

    /// The refined total-size estimate from what the job has observably
    /// done: prior stages at their true (attained) cost, the current stage
    /// projected from its progress counter once trustworthy, unobserved
    /// future stages at a prorated share of the initial guess.
    fn refined_estimate(initial: f64, view: &JobView) -> f64 {
        let attained = view.attained.as_container_secs();
        let attained_stage = view.attained_stage.as_container_secs();
        if view.stage_progress < MIN_PROGRESS || attained_stage <= 0.0 {
            return initial.max(attained);
        }
        let past = (attained - attained_stage).max(0.0);
        let stage_projected = (attained_stage / view.stage_progress).max(attained_stage);
        let future_stages = view.stage_count.saturating_sub(view.stage_index + 1);
        let future_guess = if view.stage_count > 0 {
            initial * future_stages as f64 / view.stage_count as f64
        } else {
            0.0
        };
        (past + stage_projected + future_guess).max(attained)
    }

    /// Re-projects every visible job's estimate and shifts its virtual
    /// remaining by the delta; also records the waiting flags the *next*
    /// virtual interval ages by.
    fn refine(&mut self, views: &[JobView]) {
        for view in views {
            if let Ok(i) = self.position(view.id) {
                let v = &mut self.jobs[i];
                let refined = Self::refined_estimate(v.initial_estimate, view);
                if v.finished_rank.is_none() {
                    let delta = refined - v.refined_estimate;
                    v.virtual_remaining = (v.virtual_remaining + delta).max(0.0);
                }
                v.refined_estimate = refined;
                v.waiting = view.held == 0 && view.wants_more();
            }
        }
    }

    /// Advances the weighted virtual PS system to `now`. Waiting jobs
    /// carry weight `1 + AGING_WEIGHT`; work is water-filled by weight,
    /// finishing jobs smallest-weighted-remaining-first.
    fn advance_virtual(&mut self, now: SimTime, capacity: u32) {
        let dt = now.saturating_since(self.advanced_to).as_secs_f64();
        self.advanced_to = now;
        if dt <= 0.0 {
            return;
        }
        let mut work = capacity as f64 * dt;
        loop {
            let mut active: Vec<usize> = (0..self.jobs.len())
                .filter(|&i| self.jobs[i].finished_rank.is_none())
                .collect();
            if active.is_empty() || work <= 0.0 {
                return;
            }
            // Order by time-to-virtual-finish (remaining over weight);
            // ties resolve by id since `jobs` is id-sorted and the sort is
            // stable.
            active.sort_by(|&a, &b| {
                let ta = self.jobs[a].virtual_remaining / self.jobs[a].weight();
                let tb = self.jobs[b].virtual_remaining / self.jobs[b].weight();
                ta.total_cmp(&tb)
            });
            let total_weight: f64 = active.iter().map(|&i| self.jobs[i].weight()).sum();
            let first = &self.jobs[active[0]];
            let t_min = first.virtual_remaining / first.weight();
            if work >= t_min * total_weight {
                work -= t_min * total_weight;
                for &i in &active {
                    let v = &mut self.jobs[i];
                    v.virtual_remaining -= v.weight() * t_min;
                    if v.virtual_remaining <= 1e-9 {
                        v.virtual_remaining = 0.0;
                        v.finished_rank = Some(self.next_rank);
                        self.next_rank += 1;
                    }
                }
            } else {
                let t = work / total_weight;
                for &i in &active {
                    let v = &mut self.jobs[i];
                    v.virtual_remaining -= v.weight() * t;
                }
                return;
            }
        }
    }

    fn priority_key(&self, job: JobId) -> (u64, f64) {
        match self.position(job) {
            Ok(i) => {
                let v = &self.jobs[i];
                match v.finished_rank {
                    Some(rank) => (rank, 0.0),
                    None => (u64::MAX, v.virtual_remaining),
                }
            }
            Err(_) => (u64::MAX, f64::INFINITY),
        }
    }
}

/// Serialized state: the virtual jobs (sorted by id), the virtual clock,
/// and the next completion rank.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct HfspState {
    jobs: Vec<VirtualJob>,
    advanced_to_ms: u64,
    next_rank: u64,
}

impl Scheduler for Hfsp {
    fn name(&self) -> &str {
        "HFSP"
    }

    fn requires_oracle(&self) -> bool {
        true
    }

    fn on_job_completed(&mut self, job: JobId, _now: SimTime) {
        if let Ok(i) = self.position(job) {
            if self.jobs[i].finished_rank.is_some() {
                self.jobs.remove(i);
            } else {
                self.jobs[i].departed = true;
                self.jobs[i].waiting = false;
            }
        }
    }

    fn snapshot_state(&self) -> Option<String> {
        let state = HfspState {
            jobs: self.jobs.clone(),
            advanced_to_ms: self.advanced_to.as_millis(),
            next_rank: self.next_rank,
        };
        Some(serde_json::to_string(&state).expect("HFSP state serialization cannot fail"))
    }

    fn restore_state(&mut self, state: &str) -> Result<(), String> {
        let state: HfspState =
            serde_json::from_str(state).map_err(|e| format!("malformed HFSP state: {e}"))?;
        if state.jobs.windows(2).any(|w| w[0].job >= w[1].job) {
            return Err("HFSP state jobs are not strictly id-sorted".to_string());
        }
        self.jobs = state.jobs;
        self.advanced_to = SimTime::from_millis(state.advanced_to_ms);
        self.next_rank = state.next_rank;
        Ok(())
    }

    fn check_consistency(&self) -> Result<(), String> {
        for w in self.jobs.windows(2) {
            if w[0].job >= w[1].job {
                return Err(format!(
                    "virtual jobs out of order: {} before {}",
                    w[0].job, w[1].job
                ));
            }
        }
        for v in &self.jobs {
            if !v.virtual_remaining.is_finite() || v.virtual_remaining < 0.0 {
                return Err(format!(
                    "job {} has invalid virtual remaining {}",
                    v.job, v.virtual_remaining
                ));
            }
            if !v.refined_estimate.is_finite() || v.refined_estimate < 0.0 {
                return Err(format!(
                    "job {} has invalid refined estimate {}",
                    v.job, v.refined_estimate
                ));
            }
            if let Some(rank) = v.finished_rank {
                if rank >= self.next_rank {
                    return Err(format!(
                        "job {} carries rank {rank} but only {} were assigned",
                        v.job, self.next_rank
                    ));
                }
            }
        }
        Ok(())
    }

    fn allocate(&mut self, ctx: &SchedContext<'_>) -> AllocationPlan {
        self.admit_new(ctx.jobs());
        // Advance over [last, now] with the *previous* pass's waiting
        // flags, then refine estimates and flags from the fresh views.
        self.advance_virtual(ctx.now(), ctx.total_containers());
        self.refine(ctx.jobs());
        let jobs = ctx.jobs();
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        order.sort_by(|&a, &b| {
            let (ra, va) = self.priority_key(jobs[a].id);
            let (rb, vb) = self.priority_key(jobs[b].id);
            ra.cmp(&rb)
                .then_with(|| va.total_cmp(&vb))
                .then_with(|| jobs[a].arrival.cmp(&jobs[b].arrival))
                .then_with(|| jobs[a].id.cmp(&jobs[b].id))
        });
        let mut plan = AllocationPlan::new();
        let mut budget = ctx.total_containers();
        for idx in order {
            if budget == 0 {
                break;
            }
            let want = jobs[idx].max_useful_allocation().min(budget);
            if want > 0 {
                plan.push(jobs[idx].id, want);
                budget -= want;
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasmq_simulator::{OracleInfo, Service};

    fn view(id: u32, size: f64) -> JobView {
        JobView {
            id: JobId::new(id),
            arrival: SimTime::ZERO,
            admitted_at: SimTime::ZERO,
            priority: 1,
            attained: Service::ZERO,
            attained_stage: Service::ZERO,
            stage_index: 0,
            stage_count: 1,
            stage_progress: 0.0,
            remaining_tasks: 100,
            unstarted_tasks: 100,
            containers_per_task: 1,
            held: 0,
            oracle: Some(OracleInfo {
                total_size: Service::from_container_secs(size),
                remaining: Service::from_container_secs(size),
            }),
        }
    }

    #[test]
    fn exact_estimates_order_small_jobs_first() {
        let mut hfsp = Hfsp::new(0.0, 0);
        let jobs = vec![view(0, 500.0), view(1, 5.0), view(2, 50.0)];
        let plan = hfsp.allocate(&SchedContext::new(SimTime::ZERO, 10, &jobs));
        assert_eq!(plan.entries()[0].0, JobId::new(1));
        hfsp.check_consistency().unwrap();
    }

    #[test]
    fn progress_refines_a_bad_initial_guess() {
        // The initial guess says 10 c·s, but at 50 % stage progress the job
        // has already attained 100 c·s — projection says 200.
        let mut refined_view = view(0, 10.0);
        refined_view.attained = Service::from_container_secs(100.0);
        refined_view.attained_stage = Service::from_container_secs(100.0);
        refined_view.stage_progress = 0.5;
        let refined = Hfsp::refined_estimate(10.0, &refined_view);
        assert_eq!(refined, 200.0);

        // Below the progress floor, the guess stands (floored at attained).
        let mut early = view(0, 10.0);
        early.attained = Service::from_container_secs(2.0);
        early.attained_stage = Service::from_container_secs(2.0);
        early.stage_progress = 0.01;
        assert_eq!(Hfsp::refined_estimate(10.0, &early), 10.0);
    }

    #[test]
    fn refinement_moves_virtual_remaining_by_the_delta() {
        let mut hfsp = Hfsp::new(0.0, 0);
        let jobs = vec![view(0, 100.0)];
        hfsp.allocate(&SchedContext::new(SimTime::ZERO, 10, &jobs));
        assert_eq!(hfsp.jobs[0].virtual_remaining, 100.0);
        // The job turns out twice as large as guessed.
        let mut progressed = view(0, 100.0);
        progressed.attained = Service::from_container_secs(100.0);
        progressed.attained_stage = Service::from_container_secs(100.0);
        progressed.stage_progress = 0.5;
        progressed.held = 10;
        let jobs = vec![progressed];
        hfsp.allocate(&SchedContext::new(SimTime::ZERO, 10, &jobs));
        assert_eq!(hfsp.jobs[0].refined_estimate, 200.0);
        assert_eq!(hfsp.jobs[0].virtual_remaining, 200.0);
    }

    #[test]
    fn waiting_jobs_age_faster_through_the_virtual_system() {
        let mut hfsp = Hfsp::new(0.0, 0);
        // Job 0 holds the cluster; job 1 waits.
        let mut holder = view(0, 100.0);
        holder.held = 10;
        let waiter = view(1, 100.0);
        let jobs = vec![holder, waiter];
        hfsp.allocate(&SchedContext::new(SimTime::ZERO, 10, &jobs));
        assert!(hfsp.jobs[1].waiting);
        assert!(!hfsp.jobs[0].waiting);
        // 30 c·s of virtual work, weights 1 vs 2: the waiter gets 20.
        hfsp.allocate(&SchedContext::new(SimTime::from_secs(3), 10, &jobs));
        assert_eq!(hfsp.jobs[0].virtual_remaining, 90.0);
        assert_eq!(hfsp.jobs[1].virtual_remaining, 80.0);
    }

    #[test]
    fn snapshot_round_trips_bit_identically() {
        let mut hfsp = Hfsp::new(1.5, 11);
        let jobs = vec![view(0, 500.0), view(1, 5.0), view(2, 50.0)];
        hfsp.allocate(&SchedContext::new(SimTime::ZERO, 10, &jobs));
        hfsp.allocate(&SchedContext::new(SimTime::from_secs(2), 10, &jobs));
        hfsp.on_job_completed(JobId::new(1), SimTime::from_secs(2));
        let snap = hfsp.snapshot_state().unwrap();
        let mut restored = Hfsp::new(1.5, 11);
        restored.restore_state(&snap).unwrap();
        assert_eq!(restored.snapshot_state().unwrap(), snap);
        let remaining = vec![view(0, 500.0), view(2, 50.0)];
        let ctx = SchedContext::new(SimTime::from_secs(5), 10, &remaining);
        assert_eq!(restored.allocate(&ctx), hfsp.allocate(&ctx));
    }

    #[test]
    fn malformed_state_is_rejected() {
        let mut hfsp = Hfsp::new(0.0, 0);
        assert!(hfsp.restore_state("{").is_err());
    }
}
