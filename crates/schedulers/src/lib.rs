//! Baseline job schedulers for the LAS_MQ reproduction (ICDCS 2017).
//!
//! The paper compares LAS_MQ against three information-agnostic baselines,
//! all implemented here against
//! [`lasmq_simulator::Scheduler`]:
//!
//! * [`Fifo`] — strict arrival order; suffers head-of-line blocking,
//! * [`Fair`] — priority-weighted max-min sharing (YARN's Fair scheduler
//!   with the paper's random 1–5 priorities); degrades to processor
//!   sharing under concurrent large jobs,
//! * [`Las`] — least attained service; excellent on heavy tails, collapses
//!   to processor sharing when job sizes are similar.
//!
//! The *oracle / estimate* family quantifies the value of the information
//! LAS_MQ does without — all require the engine's `expose_oracle(true)`:
//!
//! * [`ShortestJobFirst`] (SJF) and [`ShortestRemainingFirst`] (SRTF),
//! * [`EstimatedSjf`] — SJF over *corrupted* estimates, quantifying the
//!   paper's §II argument that bad size estimates (especially
//!   under-estimates) are worse than no estimates,
//! * [`Fsp`] — the Fair Sojourn Protocol: jobs run to completion in the
//!   order a virtual processor-sharing system would finish them,
//! * [`Hfsp`] — an HFSP-style FSP variant with progressive estimate
//!   refinement from observed stage progress, plus aging for waiting jobs,
//! * [`Backfill`] — the WFP3 and UNICEF backfill-score heuristics from
//!   the HPC batch-scheduling literature.
//!
//! The estimate-driven entries (SJF-est, FSP, HFSP, WFP3, UNICEF) all
//! corrupt the oracle size through the shared [`noise::SizeNoise`] model,
//! so the robustness campaign compares them on identical noisy traces.
//!
//! Two further information-agnostic entries extend the lineup beyond the
//! paper's legend:
//!
//! * [`Ps`] — idealized equal-share processor sharing, the policy Fair
//!   and LAS degrade to under concurrent similar jobs,
//! * [`LearnedScheduler`] — ranks jobs with a trained [`LinearPolicy`]
//!   over the [`learned::job_features`] vector (runtime-observable
//!   signals only; trained by `ext_train` in `lasmq-experiments`).
//!
//! The [`share`] module provides the demand-capped weighted max-min
//! primitive shared by `Fair` (and by LAS_MQ's across-queue sharing in
//! `lasmq-core`).
//!
//! # Examples
//!
//! ```
//! use lasmq_schedulers::{Fair, Fifo, Las};
//! use lasmq_simulator::Scheduler;
//!
//! let (fifo, fair, las) = (Fifo::new(), Fair::new(), Las::new());
//! assert_eq!([fifo.name(), fair.name(), las.name()], ["FIFO", "FAIR", "LAS"]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod backfill;
pub mod estimated;
pub mod fair;
pub mod fifo;
pub mod fsp;
pub mod hfsp;
pub mod las;
pub mod learned;
pub mod noise;
pub mod oracle;
pub mod ps;
pub mod share;

pub use backfill::Backfill;
pub use estimated::EstimatedSjf;
pub use fair::Fair;
pub use fifo::Fifo;
pub use fsp::Fsp;
pub use hfsp::Hfsp;
pub use las::Las;
pub use learned::{
    job_features, ClusterFeatures, LearnedScheduler, LinearPolicy, FEATURE_COUNT, FEATURE_NAMES,
    POLICY_SCHEMA_VERSION,
};
pub use oracle::{ShortestJobFirst, ShortestRemainingFirst};
pub use ps::Ps;
