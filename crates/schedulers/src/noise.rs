//! The shared size-estimation noise model.
//!
//! Every estimate-driven scheduler in the zoo (SJF-est, FSP, HFSP, the
//! backfill heuristics) corrupts the oracle's true job size the same way:
//! one multiplicative log-normal draw per job, mean-preserving
//! (`E[factor] = 1`), plus an optional probability of a ×10⁻⁴ gross
//! under-estimate — the "mistook a giant for a tiny job" failure §III-B
//! calls out as the dangerous direction. Centralizing the draw here keeps
//! the robustness campaign honest: a given `(sigma, seed, job)` triple maps
//! to exactly one factor no matter which scheduler consumes it, so
//! cross-scheduler comparisons at one noise level see the *same* corrupted
//! trace.
//!
//! Draws are pure functions of `(seed, job id)` via splitmix64 — no RNG
//! state, so estimates are identical across thread counts, across
//! snapshot/restore cycles, and between the engine and the naive reference
//! executor.

use lasmq_simulator::{JobId, Service};

/// A deterministic per-job size-noise source.
///
/// # Examples
///
/// ```
/// use lasmq_schedulers::noise::SizeNoise;
/// use lasmq_simulator::JobId;
///
/// let clean = SizeNoise::new(0.0, 0.0, 7);
/// assert_eq!(clean.factor(JobId::new(3)), 1.0); // σ = 0 is exact
///
/// let noisy = SizeNoise::new(1.0, 0.0, 7);
/// assert_eq!(noisy.factor(JobId::new(3)), noisy.factor(JobId::new(3)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeNoise {
    sigma: f64,
    gross_underestimate_prob: f64,
    seed: u64,
}

impl SizeNoise {
    /// A noise source with log-normal scale `sigma`, a
    /// `gross_underestimate_prob` chance per job of a ×10⁻⁴ gross
    /// under-estimate, and `seed` pinning the per-job draws.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative/not finite or the probability is
    /// outside `[0, 1]`.
    pub fn new(sigma: f64, gross_underestimate_prob: f64, seed: u64) -> Self {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "sigma must be non-negative"
        );
        assert!(
            (0.0..=1.0).contains(&gross_underestimate_prob),
            "probability must be in [0, 1]"
        );
        SizeNoise {
            sigma,
            gross_underestimate_prob,
            seed,
        }
    }

    /// A noiseless source (every factor is exactly 1).
    pub fn exact() -> Self {
        SizeNoise::new(0.0, 0.0, 0)
    }

    /// The configured log-normal scale.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The multiplicative error factor for `job`. At `sigma = 0` (and no
    /// gross under-estimates) this is *exactly* `1.0` regardless of the
    /// seed: `exp(0·z − 0) = 1` for every draw, so σ = 0 schedulers are
    /// bit-identical to their perfectly informed selves.
    pub fn factor(&self, job: JobId) -> f64 {
        let h1 = splitmix64(self.seed ^ (u64::from(u32::from(job)) << 1) ^ 0x51ed);
        let h2 = splitmix64(h1);
        let h3 = splitmix64(h2);
        let u1 = to_unit(h1).max(1e-12);
        let u2 = to_unit(h2);
        // Box–Muller: one standard normal from two uniforms. The −σ²/2
        // drift makes the log-normal mean-preserving.
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        let mut factor = (self.sigma * z - self.sigma * self.sigma / 2.0).exp();
        if to_unit(h3) < self.gross_underestimate_prob {
            factor *= 1e-4;
        }
        factor
    }

    /// The corrupted estimate for a job of true size `true_size`, floored
    /// at a positive epsilon so downstream math never divides by zero.
    pub fn estimate(&self, job: JobId, true_size: Service) -> Service {
        Service::from_container_secs((true_size.as_container_secs() * self.factor(job)).max(1e-9))
    }
}

pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn to_unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sigma_zero_is_exactly_one() {
        for seed in [0u64, 1, 42, u64::MAX] {
            let noise = SizeNoise::new(0.0, 0.0, seed);
            for id in 0..200u32 {
                assert_eq!(noise.factor(JobId::new(id)), 1.0, "seed {seed} job {id}");
            }
        }
    }

    #[test]
    fn draws_are_mean_preserving_roughly() {
        let noise = SizeNoise::new(1.0, 0.0, 9);
        let mean: f64 = (0..20_000u32)
            .map(|i| noise.factor(JobId::new(i)))
            .sum::<f64>()
            / 20_000.0;
        assert!((mean - 1.0).abs() < 0.05, "mean factor {mean}");
    }

    #[test]
    fn gross_underestimates_scale_by_1e4() {
        // With probability 1 every job is grossly under-estimated.
        let clean = SizeNoise::new(0.0, 0.0, 3);
        let gross = SizeNoise::new(0.0, 1.0, 3);
        for id in 0..50u32 {
            let job = JobId::new(id);
            assert!((gross.factor(job) - clean.factor(job) * 1e-4).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "sigma must be non-negative")]
    fn negative_sigma_rejected() {
        let _ = SizeNoise::new(-1.0, 0.0, 0);
    }

    proptest! {
        /// σ = 0 factors are exactly 1 for *any* seed and job id — the
        /// noiseless path is bit-identical to the perfect oracle.
        #[test]
        fn sigma_zero_exact_for_all_seeds(seed in 0u64..u64::MAX, id in 0u32..u32::MAX) {
            prop_assert_eq!(SizeNoise::new(0.0, 0.0, seed).factor(JobId::new(id)), 1.0);
        }

        /// Draws are pure in (seed, job id): two independent instances
        /// agree bit-for-bit, which is what makes estimates identical
        /// across thread counts and restore cycles.
        #[test]
        fn draws_deterministic_per_seed_and_job(
            sigma in 0.0f64..4.0,
            seed in 0u64..u64::MAX,
            id in 0u32..u32::MAX,
        ) {
            let a = SizeNoise::new(sigma, 0.1, seed);
            let b = SizeNoise::new(sigma, 0.1, seed);
            let job = JobId::new(id);
            prop_assert_eq!(a.factor(job).to_bits(), b.factor(job).to_bits());
        }
    }
}
