//! SJF driven by *imperfect* size estimates.
//!
//! The paper's motivation (§II) is that job sizes cannot be estimated
//! reliably — and §III-B argues the failure mode is asymmetric: "if we
//! under-estimate the job size, we may give it higher priority than it
//! should have, which will delay a lot of jobs with smaller job sizes",
//! while over-estimates mostly delay the job itself (Dell'Amico et al.,
//! MASCOTS 2014). This scheduler makes that argument measurable: it is SJF
//! over a *corrupted* oracle — log-normal noise on every job's size, plus
//! an optional probability of grossly under-estimating a job (×10⁻⁴ — the
//! "mistook a giant for a tiny job" case). With zero noise it coincides
//! with [`ShortestJobFirst`](crate::ShortestJobFirst).
//!
//! Estimates are drawn once per job from a deterministic per-job hash, so
//! runs stay reproducible.

use std::collections::HashMap;

use lasmq_simulator::{AllocationPlan, JobId, SchedContext, Scheduler, Service};

use crate::noise::SizeNoise;

/// SJF with noisy size estimates (an oracle-family scheduler: it reads the
/// true size, then corrupts it — so it requires `expose_oracle(true)`).
///
/// # Examples
///
/// ```
/// use lasmq_schedulers::EstimatedSjf;
/// use lasmq_simulator::Scheduler;
///
/// let sched = EstimatedSjf::new(1.0, 0.05, 7);
/// assert!(sched.requires_oracle());
/// assert_eq!(sched.name(), "SJF-est");
/// ```
#[derive(Debug, Clone)]
pub struct EstimatedSjf {
    noise: SizeNoise,
    estimates: HashMap<JobId, Service>,
}

impl EstimatedSjf {
    /// SJF over estimates with log-normal error of scale `sigma`, and a
    /// `gross_underestimate_prob` chance per job of a ×10⁻⁴ gross
    /// under-estimate. `seed` pins the error draws.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative/not finite or the probability is
    /// outside `[0, 1]`.
    pub fn new(sigma: f64, gross_underestimate_prob: f64, seed: u64) -> Self {
        EstimatedSjf {
            noise: SizeNoise::new(sigma, gross_underestimate_prob, seed),
            estimates: HashMap::new(),
        }
    }

    /// A perfectly informed instance (sanity baseline: behaves as SJF).
    pub fn exact() -> Self {
        EstimatedSjf::new(0.0, 0.0, 0)
    }

    /// The estimate this scheduler uses for a job of true size
    /// `true_size` (computed on first contact, then frozen — as a real
    /// predictor would produce one estimate at submission).
    fn estimate(&mut self, job: JobId, true_size: Service) -> Service {
        let noise = self.noise;
        *self
            .estimates
            .entry(job)
            .or_insert_with(|| noise.estimate(job, true_size))
    }
}

/// One frozen estimate in a serialized snapshot of this scheduler.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct FrozenEstimate {
    job: u32,
    size: f64,
}

/// Serialized state: the frozen per-job estimates, sorted by job id so the
/// payload is byte-stable regardless of map iteration order. The noise
/// parameters are configuration, not state — restore re-checks nothing
/// because estimates are self-contained values.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct EstimatedSjfState {
    estimates: Vec<FrozenEstimate>,
}

impl Scheduler for EstimatedSjf {
    fn name(&self) -> &str {
        "SJF-est"
    }

    fn requires_oracle(&self) -> bool {
        true
    }

    fn on_job_completed(&mut self, job: JobId, _now: lasmq_simulator::SimTime) {
        self.estimates.remove(&job);
    }

    fn snapshot_state(&self) -> Option<String> {
        let mut estimates: Vec<FrozenEstimate> = self
            .estimates
            .iter()
            .map(|(&job, &size)| FrozenEstimate {
                job: u32::from(job),
                size: size.as_container_secs(),
            })
            .collect();
        estimates.sort_by_key(|e| e.job);
        let state = EstimatedSjfState { estimates };
        Some(serde_json::to_string(&state).expect("SJF-est state serialization cannot fail"))
    }

    fn restore_state(&mut self, state: &str) -> Result<(), String> {
        let state: EstimatedSjfState =
            serde_json::from_str(state).map_err(|e| format!("malformed SJF-est state: {e}"))?;
        self.estimates = state
            .estimates
            .into_iter()
            .map(|e| (JobId::new(e.job), Service::from_container_secs(e.size)))
            .collect();
        Ok(())
    }

    fn allocate(&mut self, ctx: &SchedContext<'_>) -> AllocationPlan {
        let jobs = ctx.jobs();
        let mut keyed: Vec<(Service, usize)> = jobs
            .iter()
            .enumerate()
            .map(|(i, j)| {
                let true_size = j
                    .oracle
                    .expect("engine guarantees oracle info for oracle schedulers")
                    .total_size;
                (self.estimate(j.id, true_size), i)
            })
            .collect();
        keyed.sort_by(|a, b| {
            a.0.total_cmp(&b.0)
                .then_with(|| jobs[a.1].arrival.cmp(&jobs[b.1].arrival))
                .then_with(|| jobs[a.1].id.cmp(&jobs[b.1].id))
        });
        let mut plan = AllocationPlan::new();
        let mut budget = ctx.total_containers();
        for (_, idx) in keyed {
            if budget == 0 {
                break;
            }
            let want = jobs[idx].max_useful_allocation().min(budget);
            if want > 0 {
                plan.push(jobs[idx].id, want);
                budget -= want;
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasmq_simulator::{JobView, OracleInfo, SimTime};

    fn view(id: u32, size: f64) -> JobView {
        JobView {
            id: JobId::new(id),
            arrival: SimTime::ZERO,
            admitted_at: SimTime::ZERO,
            priority: 1,
            attained: Service::ZERO,
            attained_stage: Service::ZERO,
            stage_index: 0,
            stage_count: 1,
            stage_progress: 0.0,
            remaining_tasks: 100,
            unstarted_tasks: 100,
            containers_per_task: 1,
            held: 0,
            oracle: Some(OracleInfo {
                total_size: Service::from_container_secs(size),
                remaining: Service::from_container_secs(size),
            }),
        }
    }

    #[test]
    fn exact_estimates_reproduce_sjf_order() {
        let jobs = vec![view(0, 500.0), view(1, 5.0), view(2, 50.0)];
        let ctx = SchedContext::new(SimTime::ZERO, 10, &jobs);
        let plan = EstimatedSjf::exact().allocate(&ctx);
        assert_eq!(plan.entries()[0].0, JobId::new(1));
    }

    #[test]
    fn estimates_are_frozen_per_job() {
        let mut sched = EstimatedSjf::new(1.0, 0.0, 3);
        let a = sched.estimate(JobId::new(7), Service::from_container_secs(100.0));
        let b = sched.estimate(JobId::new(7), Service::from_container_secs(100.0));
        assert_eq!(a, b);
    }

    #[test]
    fn same_seed_same_estimates() {
        let mut a = EstimatedSjf::new(1.5, 0.1, 42);
        let mut b = EstimatedSjf::new(1.5, 0.1, 42);
        for i in 0..50 {
            let size = Service::from_container_secs(10.0 + i as f64);
            assert_eq!(
                a.estimate(JobId::new(i), size),
                b.estimate(JobId::new(i), size)
            );
        }
    }

    #[test]
    fn gross_underestimates_occur_at_roughly_the_configured_rate() {
        let mut sched = EstimatedSjf::new(0.0, 0.2, 11);
        let size = Service::from_container_secs(1_000.0);
        let mut gross = 0;
        for i in 0..2_000 {
            let est = sched.estimate(JobId::new(i), size);
            if est.as_container_secs() < 100.0 {
                gross += 1;
            }
        }
        let rate = gross as f64 / 2_000.0;
        assert!((rate - 0.2).abs() < 0.05, "gross rate {rate}");
    }

    #[test]
    fn noisy_estimates_shuffle_close_sizes_not_decades() {
        // With sigma 0.5, a 10× size gap is almost never inverted.
        let jobs = vec![view(0, 1_000.0), view(1, 1.0)];
        let ctx = SchedContext::new(SimTime::ZERO, 10, &jobs);
        let mut inversions = 0;
        for seed in 0..100 {
            let plan = EstimatedSjf::new(0.5, 0.0, seed).allocate(&ctx);
            if plan.entries()[0].0 == JobId::new(0) {
                inversions += 1;
            }
        }
        assert!(
            inversions < 5,
            "{inversions} decade inversions at sigma 0.5"
        );
    }

    #[test]
    #[should_panic(expected = "probability must be in")]
    fn bad_probability_rejected() {
        let _ = EstimatedSjf::new(0.5, 1.5, 0);
    }
}
