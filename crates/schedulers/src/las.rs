//! The LAS (least attained service) baseline.
//!
//! LAS serves the job that has received the least service so far — a
//! preemptive policy that favours small jobs without knowing sizes (Rai et
//! al., SIGMETRICS 2003; §I of the paper). Each pass, jobs are sorted by
//! attained service and given their full demand in that order, so the
//! least-served job takes as much of the cluster as it can use. Over
//! successive quanta, jobs with equal attained service leapfrog one
//! another, which is exactly LAS's processor-sharing behaviour among
//! equals — and its weakness when several large jobs coexist (Fig. 1).

use lasmq_simulator::{AllocationPlan, SchedContext, Scheduler};

/// Least-attained-service scheduling.
///
/// # Examples
///
/// ```
/// use lasmq_schedulers::Las;
/// use lasmq_simulator::Scheduler;
///
/// assert_eq!(Las::new().name(), "LAS");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Las {
    _private: (),
}

impl Las {
    /// Creates the LAS scheduler.
    pub fn new() -> Self {
        Las { _private: () }
    }
}

impl Scheduler for Las {
    fn name(&self) -> &str {
        "LAS"
    }

    // LAS re-derives its ordering from attained service (which lives in the
    // engine's job views) every pass, so there is nothing to snapshot.
    fn snapshot_state(&self) -> Option<String> {
        None
    }

    fn restore_state(&mut self, _state: &str) -> Result<(), String> {
        Ok(())
    }

    fn allocate(&mut self, ctx: &SchedContext<'_>) -> AllocationPlan {
        let mut order: Vec<usize> = (0..ctx.jobs().len()).collect();
        let jobs = ctx.jobs();
        order.sort_by(|&a, &b| {
            jobs[a]
                .attained
                .total_cmp(&jobs[b].attained)
                .then_with(|| jobs[a].admitted_at.cmp(&jobs[b].admitted_at))
                .then_with(|| jobs[a].id.cmp(&jobs[b].id))
        });
        let mut plan = AllocationPlan::new();
        let mut budget = ctx.total_containers();
        for idx in order {
            if budget == 0 {
                break;
            }
            let want = jobs[idx].max_useful_allocation().min(budget);
            if want > 0 {
                plan.push(jobs[idx].id, want);
                budget -= want;
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasmq_simulator::{JobId, JobView, Service, SimTime};

    fn view(id: u32, attained: f64, unstarted: u32) -> JobView {
        JobView {
            id: JobId::new(id),
            arrival: SimTime::ZERO,
            admitted_at: SimTime::from_secs(id as u64),
            priority: 1,
            attained: Service::from_container_secs(attained),
            attained_stage: Service::from_container_secs(attained),
            stage_index: 0,
            stage_count: 1,
            stage_progress: 0.0,
            remaining_tasks: unstarted,
            unstarted_tasks: unstarted,
            containers_per_task: 1,
            held: 0,
            oracle: None,
        }
    }

    #[test]
    fn least_attained_served_first() {
        let jobs = vec![view(0, 50.0, 100), view(1, 5.0, 100), view(2, 20.0, 100)];
        let ctx = SchedContext::new(SimTime::ZERO, 10, &jobs);
        let plan = Las::new().allocate(&ctx);
        // Job 1 (attained 5) absorbs the whole cluster.
        assert_eq!(plan.entries(), &[(JobId::new(1), 10)]);
    }

    #[test]
    fn surplus_flows_to_next_least_attained() {
        let jobs = vec![view(0, 0.0, 3), view(1, 10.0, 100)];
        let ctx = SchedContext::new(SimTime::ZERO, 10, &jobs);
        let plan = Las::new().allocate(&ctx);
        assert_eq!(plan.entries(), &[(JobId::new(0), 3), (JobId::new(1), 7)]);
    }

    #[test]
    fn ties_break_by_admission_then_id() {
        let jobs = vec![view(1, 0.0, 100), view(0, 0.0, 100)];
        let ctx = SchedContext::new(SimTime::ZERO, 4, &jobs);
        let plan = Las::new().allocate(&ctx);
        // Same attained service: job 0 was admitted earlier (admitted_at =
        // id seconds in this fixture).
        assert_eq!(plan.entries()[0].0, JobId::new(0));
    }

    #[test]
    fn newly_arrived_job_preempts() {
        // A fresh job (attained 0) outranks a long-running one, mirroring
        // Fig. 1's preemption of job A by B and C.
        let jobs = vec![view(0, 1_000.0, 100), view(1, 0.0, 100)];
        let ctx = SchedContext::new(SimTime::ZERO, 8, &jobs);
        let plan = Las::new().allocate(&ctx);
        assert_eq!(plan.entries(), &[(JobId::new(1), 8)]);
    }
}
