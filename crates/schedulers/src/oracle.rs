//! Oracle baselines: SJF and SRTF with ground-truth job sizes.
//!
//! The paper's motivation (§I) is that shortest-job-first and
//! shortest-remaining-time-first are excellent *if* job sizes are known —
//! which they usually are not. These schedulers quantify the "price of no
//! information": they read the true sizes from [`JobView::oracle`], which
//! the engine only populates when built with `expose_oracle(true)` (it
//! refuses to run them otherwise).
//!
//! [`JobView::oracle`]: lasmq_simulator::JobView

use lasmq_simulator::{AllocationPlan, SchedContext, Scheduler, Service};

/// Shortest job first (preemptive, by true total size).
///
/// # Examples
///
/// ```
/// use lasmq_schedulers::ShortestJobFirst;
/// use lasmq_simulator::Scheduler;
///
/// let sjf = ShortestJobFirst::new();
/// assert!(sjf.requires_oracle());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ShortestJobFirst {
    _private: (),
}

impl ShortestJobFirst {
    /// Creates the SJF oracle scheduler.
    pub fn new() -> Self {
        ShortestJobFirst { _private: () }
    }
}

impl Scheduler for ShortestJobFirst {
    fn name(&self) -> &str {
        "SJF"
    }

    fn requires_oracle(&self) -> bool {
        true
    }

    fn allocate(&mut self, ctx: &SchedContext<'_>) -> AllocationPlan {
        allocate_by_key(ctx, |j| {
            j.oracle
                .expect("engine guarantees oracle info for oracle schedulers")
                .total_size
        })
    }
}

/// Shortest remaining time first (preemptive, by true remaining service).
#[derive(Debug, Clone, Copy, Default)]
pub struct ShortestRemainingFirst {
    _private: (),
}

impl ShortestRemainingFirst {
    /// Creates the SRTF oracle scheduler.
    pub fn new() -> Self {
        ShortestRemainingFirst { _private: () }
    }
}

impl Scheduler for ShortestRemainingFirst {
    fn name(&self) -> &str {
        "SRTF"
    }

    fn requires_oracle(&self) -> bool {
        true
    }

    fn allocate(&mut self, ctx: &SchedContext<'_>) -> AllocationPlan {
        allocate_by_key(ctx, |j| {
            j.oracle
                .expect("engine guarantees oracle info for oracle schedulers")
                .remaining
        })
    }
}

fn allocate_by_key(
    ctx: &SchedContext<'_>,
    key: impl Fn(&lasmq_simulator::JobView) -> Service,
) -> AllocationPlan {
    let jobs = ctx.jobs();
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by(|&a, &b| {
        key(&jobs[a])
            .total_cmp(&key(&jobs[b]))
            .then_with(|| jobs[a].arrival.cmp(&jobs[b].arrival))
            .then_with(|| jobs[a].id.cmp(&jobs[b].id))
    });
    let mut plan = AllocationPlan::new();
    let mut budget = ctx.total_containers();
    for idx in order {
        if budget == 0 {
            break;
        }
        let want = jobs[idx].max_useful_allocation().min(budget);
        if want > 0 {
            plan.push(jobs[idx].id, want);
            budget -= want;
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasmq_simulator::{JobId, JobView, OracleInfo, SimTime};

    fn view(id: u32, total: f64, remaining: f64) -> JobView {
        JobView {
            id: JobId::new(id),
            arrival: SimTime::ZERO,
            admitted_at: SimTime::ZERO,
            priority: 1,
            attained: Service::ZERO,
            attained_stage: Service::ZERO,
            stage_index: 0,
            stage_count: 1,
            stage_progress: 0.0,
            remaining_tasks: 100,
            unstarted_tasks: 100,
            containers_per_task: 1,
            held: 0,
            oracle: Some(OracleInfo {
                total_size: Service::from_container_secs(total),
                remaining: Service::from_container_secs(remaining),
            }),
        }
    }

    #[test]
    fn sjf_orders_by_total_size() {
        let jobs = vec![view(0, 100.0, 10.0), view(1, 5.0, 5.0)];
        let ctx = SchedContext::new(SimTime::ZERO, 8, &jobs);
        let plan = ShortestJobFirst::new().allocate(&ctx);
        assert_eq!(plan.entries()[0].0, JobId::new(1));
    }

    #[test]
    fn srtf_orders_by_remaining() {
        // Job 0 is bigger in total but nearly done.
        let jobs = vec![view(0, 100.0, 2.0), view(1, 5.0, 5.0)];
        let ctx = SchedContext::new(SimTime::ZERO, 8, &jobs);
        let plan = ShortestRemainingFirst::new().allocate(&ctx);
        assert_eq!(plan.entries()[0].0, JobId::new(0));
    }

    #[test]
    fn surplus_cascades_down_the_order() {
        let mut small = view(1, 5.0, 5.0);
        small.unstarted_tasks = 2;
        small.remaining_tasks = 2;
        let jobs = vec![view(0, 100.0, 100.0), small];
        let ctx = SchedContext::new(SimTime::ZERO, 10, &jobs);
        let plan = ShortestJobFirst::new().allocate(&ctx);
        assert_eq!(plan.entries(), &[(JobId::new(1), 2), (JobId::new(0), 8)]);
    }
}
