//! The Processor Sharing (PS) baseline.
//!
//! PS divides the cluster equally among all admitted jobs, capped by each
//! job's useful demand, with the surplus of capped jobs recirculating —
//! plain equal-weight max-min fairness. It is the idealized policy that
//! Fair and LAS both *degrade to* in their worst cases (many concurrent
//! similar jobs), so having it as an explicit lineup entry makes those
//! degradations measurable: where LAS ≈ PS the size-based family has
//! nothing left to exploit.
//!
//! Unlike [`Fair`](crate::Fair) with equal weights, PS ignores usage
//! history entirely: the share computation runs over jobs in admission
//! order every pass, so integer-rounding surplus goes to older jobs
//! instead of rotating by attained service.

use lasmq_simulator::{AllocationPlan, SchedContext, Scheduler};

use crate::share::{weighted_shares, ShareRequest};

/// Equal-share processor sharing.
///
/// # Examples
///
/// ```
/// use lasmq_schedulers::Ps;
/// use lasmq_simulator::Scheduler;
///
/// assert_eq!(Ps::new().name(), "PS");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Ps {
    _private: (),
}

impl Ps {
    /// Creates the PS scheduler.
    pub fn new() -> Self {
        Ps { _private: () }
    }
}

impl Scheduler for Ps {
    fn name(&self) -> &str {
        "PS"
    }

    // PS recomputes equal shares from demand every pass; no state.
    fn snapshot_state(&self) -> Option<String> {
        None
    }

    fn restore_state(&mut self, _state: &str) -> Result<(), String> {
        Ok(())
    }

    fn allocate(&mut self, ctx: &SchedContext<'_>) -> AllocationPlan {
        let jobs = ctx.jobs();
        let requests: Vec<ShareRequest> = jobs
            .iter()
            .map(|j| ShareRequest::new(j.max_useful_allocation(), 1.0))
            .collect();
        let shares = weighted_shares(ctx.total_containers(), &requests);
        jobs.iter()
            .zip(shares)
            .filter(|(_, s)| *s > 0)
            .map(|(j, s)| (j.id, s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasmq_simulator::{JobId, JobView, Service, SimTime};

    fn view(id: u32, attained: f64, unstarted: u32) -> JobView {
        JobView {
            id: JobId::new(id),
            arrival: SimTime::ZERO,
            admitted_at: SimTime::from_secs(id as u64),
            priority: 1,
            attained: Service::from_container_secs(attained),
            attained_stage: Service::from_container_secs(attained),
            stage_index: 0,
            stage_count: 1,
            stage_progress: 0.0,
            remaining_tasks: unstarted,
            unstarted_tasks: unstarted,
            containers_per_task: 1,
            held: 0,
            oracle: None,
        }
    }

    #[test]
    fn splits_the_cluster_equally() {
        let jobs = vec![view(0, 100.0, 50), view(1, 0.0, 50)];
        let ctx = SchedContext::new(SimTime::ZERO, 10, &jobs);
        let plan = Ps::new().allocate(&ctx);
        // Attained service is irrelevant: both jobs get half.
        assert_eq!(plan.entries(), &[(JobId::new(0), 5), (JobId::new(1), 5)]);
    }

    #[test]
    fn capped_jobs_surplus_recirculates() {
        let jobs = vec![view(0, 0.0, 2), view(1, 0.0, 100)];
        let ctx = SchedContext::new(SimTime::ZERO, 10, &jobs);
        let plan = Ps::new().allocate(&ctx);
        assert_eq!(plan.entries(), &[(JobId::new(0), 2), (JobId::new(1), 8)]);
    }

    #[test]
    fn work_conserving_under_scarcity() {
        let jobs = vec![view(0, 0.0, 100), view(1, 0.0, 100), view(2, 0.0, 100)];
        let ctx = SchedContext::new(SimTime::ZERO, 10, &jobs);
        let plan = Ps::new().allocate(&ctx);
        assert_eq!(plan.total_target(), 10);
    }
}
