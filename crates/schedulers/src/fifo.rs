//! The FIFO baseline.
//!
//! Jobs are served strictly in admission order: the head job receives its
//! full demand, then the next, until the cluster is exhausted. This is
//! YARN's FIFO scheduler, and the paper's worst baseline under mixed job
//! sizes — small jobs are "severely delayed by large jobs" (§V-B1).

use lasmq_simulator::{AllocationPlan, SchedContext, Scheduler};

/// First-in-first-out job scheduling.
///
/// # Examples
///
/// ```
/// use lasmq_schedulers::Fifo;
/// use lasmq_simulator::Scheduler;
///
/// assert_eq!(Fifo::new().name(), "FIFO");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Fifo {
    _private: (),
}

impl Fifo {
    /// Creates the FIFO scheduler.
    pub fn new() -> Self {
        Fifo { _private: () }
    }
}

impl Scheduler for Fifo {
    fn name(&self) -> &str {
        "FIFO"
    }

    // FIFO keeps no state between passes (the plan is recomputed from the
    // admission-ordered views), so the snapshot is explicitly empty.
    fn snapshot_state(&self) -> Option<String> {
        None
    }

    fn restore_state(&mut self, _state: &str) -> Result<(), String> {
        Ok(())
    }

    fn allocate(&mut self, ctx: &SchedContext<'_>) -> AllocationPlan {
        let mut plan = AllocationPlan::new();
        let mut budget = ctx.total_containers();
        // ctx.jobs() is in admission order, which is arrival order.
        for job in ctx.jobs() {
            if budget == 0 {
                break;
            }
            let want = job.max_useful_allocation().min(budget);
            if want > 0 {
                plan.push(job.id, want);
                budget -= want;
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasmq_simulator::{JobId, JobView, Service, SimTime};

    fn view(id: u32, unstarted: u32, held: u32) -> JobView {
        JobView {
            id: JobId::new(id),
            arrival: SimTime::from_secs(id as u64),
            admitted_at: SimTime::from_secs(id as u64),
            priority: 1,
            attained: Service::ZERO,
            attained_stage: Service::ZERO,
            stage_index: 0,
            stage_count: 1,
            stage_progress: 0.0,
            remaining_tasks: unstarted,
            unstarted_tasks: unstarted,
            containers_per_task: 1,
            held,
            oracle: None,
        }
    }

    #[test]
    fn head_of_line_gets_everything_it_needs() {
        let jobs = vec![view(0, 6, 0), view(1, 10, 0)];
        let ctx = SchedContext::new(SimTime::ZERO, 10, &jobs);
        let plan = Fifo::new().allocate(&ctx);
        assert_eq!(plan.entries(), &[(JobId::new(0), 6), (JobId::new(1), 4)]);
    }

    #[test]
    fn large_head_starves_the_tail() {
        let jobs = vec![view(0, 100, 0), view(1, 1, 0)];
        let ctx = SchedContext::new(SimTime::ZERO, 10, &jobs);
        let plan = Fifo::new().allocate(&ctx);
        assert_eq!(plan.entries(), &[(JobId::new(0), 10)]);
        assert_eq!(plan.target_for(JobId::new(1)), None);
    }

    #[test]
    fn work_conserving_under_scarce_demand() {
        let jobs = vec![view(0, 2, 0), view(1, 3, 0)];
        let ctx = SchedContext::new(SimTime::ZERO, 100, &jobs);
        let plan = Fifo::new().allocate(&ctx);
        assert_eq!(plan.total_target(), 5);
    }

    #[test]
    fn empty_cluster_empty_plan() {
        let ctx = SchedContext::new(SimTime::ZERO, 10, &[]);
        assert!(Fifo::new().allocate(&ctx).is_empty());
    }
}
