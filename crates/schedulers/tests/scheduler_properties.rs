//! Property-based tests of the baseline schedulers and the weighted-share
//! primitive.

use proptest::prelude::*;

use lasmq_schedulers::share::{weighted_shares, ShareRequest};
use lasmq_schedulers::{Fair, Fifo, Las};
use lasmq_simulator::{JobId, JobView, SchedContext, Scheduler, Service, SimTime};

fn view_strategy() -> impl Strategy<Value = JobView> {
    (
        0u32..1_000,
        0.0f64..1e4,
        0u32..200,
        1u8..=5,
        1u32..=2,
        0u64..1_000,
    )
        .prop_map(
            |(id, attained, unstarted, priority, width, admitted)| JobView {
                id: JobId::new(id),
                arrival: SimTime::from_millis(admitted),
                admitted_at: SimTime::from_millis(admitted),
                priority,
                attained: Service::from_container_secs(attained),
                attained_stage: Service::from_container_secs(attained / 2.0),
                stage_index: 0,
                stage_count: 2,
                stage_progress: 0.5,
                remaining_tasks: unstarted,
                unstarted_tasks: unstarted,
                containers_per_task: width,
                held: 0,
                oracle: None,
            },
        )
}

fn dedup_by_id(mut views: Vec<JobView>) -> Vec<JobView> {
    views.sort_by_key(|v| v.id);
    views.dedup_by_key(|v| v.id);
    views
}

fn assert_plan_sound(
    name: &str,
    plan: &lasmq_simulator::AllocationPlan,
    views: &[JobView],
    capacity: u32,
) -> Result<(), TestCaseError> {
    // Final targets: last entry per job wins.
    let mut totals: std::collections::HashMap<JobId, u32> = std::collections::HashMap::new();
    for &(id, t) in plan.entries() {
        totals.insert(id, t);
    }
    let granted: u64 = totals.values().map(|&t| t as u64).sum();
    prop_assert!(
        granted <= capacity as u64,
        "{name} over-allocated: {granted} > {capacity}"
    );
    let demand: u64 = views.iter().map(|v| v.max_useful_allocation() as u64).sum();
    if demand >= capacity as u64 {
        prop_assert_eq!(
            granted,
            capacity as u64,
            "{} is not work-conserving under saturation",
            name
        );
    } else {
        prop_assert_eq!(granted, demand, "{} wasted demand headroom", name);
    }
    for (id, target) in totals {
        let view = views.iter().find(|v| v.id == id);
        prop_assert!(view.is_some(), "{name} planned for an unknown job");
        prop_assert!(
            target <= view.unwrap().max_useful_allocation(),
            "{name} exceeded a job's useful demand"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All baselines produce sound, work-conserving plans on arbitrary
    /// job mixes.
    #[test]
    fn plans_are_sound_and_work_conserving(
        views in prop::collection::vec(view_strategy(), 1..30).prop_map(dedup_by_id),
        capacity in 1u32..200,
    ) {
        let ctx = SchedContext::new(SimTime::ZERO, capacity, &views);
        assert_plan_sound("FIFO", &Fifo::new().allocate(&ctx), &views, capacity)?;
        assert_plan_sound("FAIR", &Fair::new().allocate(&ctx), &views, capacity)?;
        assert_plan_sound("LAS", &Las::new().allocate(&ctx), &views, capacity)?;
    }

    /// LAS's first plan entry is always (one of) the least-attained jobs
    /// that can use containers.
    #[test]
    fn las_serves_least_attained_first(
        views in prop::collection::vec(view_strategy(), 1..30).prop_map(dedup_by_id),
        capacity in 1u32..100,
    ) {
        let ctx = SchedContext::new(SimTime::ZERO, capacity, &views);
        let plan = Las::new().allocate(&ctx);
        if let Some(&(first, _)) = plan.entries().first() {
            let first_attained = views.iter().find(|v| v.id == first).unwrap().attained;
            let min_attained = views
                .iter()
                .filter(|v| v.max_useful_allocation() > 0)
                .map(|v| v.attained.as_container_secs())
                .fold(f64::INFINITY, f64::min);
            prop_assert!(first_attained.as_container_secs() <= min_attained + 1e-9);
        }
    }

    /// FIFO never serves a later arrival while an earlier one still has
    /// unmet demand.
    #[test]
    fn fifo_respects_arrival_order(
        views in prop::collection::vec(view_strategy(), 1..20).prop_map(dedup_by_id),
        capacity in 1u32..60,
    ) {
        // ctx order is admission order; make it so.
        let mut views = views;
        views.sort_by_key(|v| (v.admitted_at, v.id));
        let ctx = SchedContext::new(SimTime::ZERO, capacity, &views);
        let plan = Fifo::new().allocate(&ctx);
        // Walk views in order: once a job is under-served, no later job
        // may receive anything.
        let mut starved = false;
        for v in &views {
            let got = plan.target_for(v.id).unwrap_or(0);
            if starved {
                prop_assert_eq!(got, 0, "job served behind a starved predecessor");
            }
            if got < v.max_useful_allocation() {
                starved = true;
            }
        }
    }

    /// weighted_shares: exact totals, demand caps, and weight-proportional
    /// splits for uncapped parties.
    #[test]
    fn weighted_shares_invariants(
        demands in prop::collection::vec(0u32..100, 1..50),
        weights in prop::collection::vec(0.0f64..10.0, 50),
        capacity in 0u32..300,
    ) {
        let requests: Vec<ShareRequest> = demands
            .iter()
            .zip(&weights)
            .map(|(&d, &w)| ShareRequest::new(d, w))
            .collect();
        let alloc = weighted_shares(capacity, &requests);
        prop_assert_eq!(alloc.len(), requests.len());
        for (a, r) in alloc.iter().zip(&requests) {
            prop_assert!(*a <= r.demand);
            if r.weight == 0.0 {
                prop_assert_eq!(*a, 0, "zero-weight party was served");
            }
        }
        let positive_demand: u32 =
            requests.iter().filter(|r| r.weight > 0.0).map(|r| r.demand).sum();
        let expected = capacity.min(positive_demand);
        prop_assert_eq!(alloc.iter().sum::<u32>(), expected);
    }

    /// Doubling every weight changes nothing: shares depend only on
    /// weight ratios.
    #[test]
    fn weighted_shares_scale_invariant(
        demands in prop::collection::vec(1u32..50, 1..20),
        capacity in 1u32..100,
    ) {
        let base: Vec<ShareRequest> = demands
            .iter()
            .enumerate()
            .map(|(i, &d)| ShareRequest::new(d, 1.0 + (i % 4) as f64))
            .collect();
        let doubled: Vec<ShareRequest> =
            base.iter().map(|r| ShareRequest::new(r.demand, r.weight * 2.0)).collect();
        prop_assert_eq!(weighted_shares(capacity, &base), weighted_shares(capacity, &doubled));
    }
}
