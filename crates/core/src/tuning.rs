//! Threshold auto-tuning (the paper's §VII future-work direction).
//!
//! §III-E: "if the size of the largest job is s, then the number of queues
//! k = ⌈log(s)⌉" (base `p`, given the first threshold and step). When an
//! operator has a *sample* of historical job sizes — even a rough one —
//! this module turns it into a configuration: the first threshold is placed
//! so a sizeable share of jobs finishes entirely within the top queue, and
//! enough queues are added for the largest observed job to be separable.

use crate::config::LasMqConfig;

/// A `(k, α₁)` suggestion derived from a size sample.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct TuningSuggestion {
    /// Suggested number of queues.
    pub num_queues: usize,
    /// Suggested first-queue threshold, in container-seconds.
    pub first_threshold: f64,
    /// The step the suggestion was computed for.
    pub step: f64,
}

impl TuningSuggestion {
    /// Applies the suggestion to a base configuration.
    pub fn apply_to(&self, config: LasMqConfig) -> LasMqConfig {
        config
            .with_num_queues(self.num_queues)
            .with_first_threshold(self.first_threshold)
            .with_step(self.step)
    }
}

/// Suggests `(k, α₁)` from observed job sizes (container-seconds) and a
/// step `p`.
///
/// The first threshold is set near the sample's median — §V-C2 shows
/// performance degrades once the first threshold exceeds the mean job size
/// (most jobs then never leave the first queue), while anything comfortably
/// below works; the number of queues then follows the paper's
/// `k = ⌈log_p(max / α₁)⌉ + 1` rule so the largest job is separable.
///
/// # Errors
///
/// Returns an explanatory message if the sample is empty, contains a
/// non-positive or non-finite size, or `step ≤ 1`.
///
/// # Examples
///
/// ```
/// use lasmq_core::tuning::suggest;
///
/// let sizes = vec![1.0, 2.0, 4.0, 8.0, 10_000.0];
/// let s = suggest(&sizes, 10.0)?;
/// assert!(s.num_queues >= 4);
/// assert!(s.first_threshold <= 8.0);
/// # Ok::<(), String>(())
/// ```
pub fn suggest(sizes: &[f64], step: f64) -> Result<TuningSuggestion, String> {
    if sizes.is_empty() {
        return Err("size sample is empty".into());
    }
    if !(step.is_finite() && step > 1.0) {
        return Err(format!("step must exceed 1, got {step}"));
    }
    let mut sorted = sizes.to_vec();
    for &s in &sorted {
        if !(s.is_finite() && s > 0.0) {
            return Err(format!("sizes must be positive and finite, got {s}"));
        }
    }
    sorted.sort_by(f64::total_cmp);
    let median = sorted[sorted.len() / 2];
    let max = *sorted.last().expect("nonempty");

    let first_threshold = median;
    // The k − 1 thresholds should reach the largest job so even the
    // biggest jobs are separable: α₁ · p^(k−2) ≥ max.
    let decades = (max / first_threshold).log(step).ceil().max(0.0) as usize;
    let num_queues = decades + 2;
    Ok(TuningSuggestion {
        num_queues,
        first_threshold,
        step,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_the_largest_job() {
        let sizes = vec![1.0, 2.0, 3.0, 5.0, 10_000.0];
        let s = suggest(&sizes, 10.0).unwrap();
        let config = s.apply_to(LasMqConfig::paper_simulations());
        let last_threshold = config.thresholds().last().unwrap().as_container_secs();
        assert!(
            last_threshold >= 10_000.0,
            "last threshold {last_threshold}"
        );
    }

    #[test]
    fn first_threshold_below_mean_prevents_fig8b_collapse() {
        // A heavy-tail-ish sample with mean ~20 (the paper's trace): the
        // suggestion must stay well below the mean.
        let mut sizes: Vec<f64> = (0..1_000).map(|i| 1.0 + (i % 7) as f64).collect();
        sizes.extend([5_000.0, 9_000.0]);
        let s = suggest(&sizes, 10.0).unwrap();
        let mean: f64 = sizes.iter().sum::<f64>() / sizes.len() as f64;
        assert!(
            s.first_threshold <= mean,
            "{} vs mean {mean}",
            s.first_threshold
        );
    }

    #[test]
    fn uniform_sample_still_yields_two_queues() {
        let s = suggest(&[10.0; 50], 10.0).unwrap();
        assert_eq!(s.num_queues, 2);
        assert_eq!(s.first_threshold, 10.0);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(suggest(&[], 10.0).is_err());
        assert!(suggest(&[1.0, -2.0], 10.0).is_err());
        assert!(suggest(&[1.0], 1.0).is_err());
        assert!(suggest(&[f64::NAN], 10.0).is_err());
    }

    #[test]
    fn apply_to_roundtrips_into_config() {
        let s = suggest(&[1.0, 50.0, 2_000.0], 10.0).unwrap();
        let config = s.apply_to(LasMqConfig::paper_simulations());
        assert_eq!(config.num_queues(), s.num_queues);
        assert_eq!(
            config.thresholds()[0].as_container_secs(),
            s.first_threshold
        );
    }
}
