//! Stage-aware service estimation (§III-B of the paper).
//!
//! Jobs move across queues based on attained service, but waiting for a
//! stage to *finish* before its full cost is visible lets large jobs linger
//! in high-priority queues. The paper's *stage awareness* strategy instead
//! estimates the service a job will receive in its current stage as
//!
//! ```text
//! estimated stage service = attained service in stage / stage progress
//! ```
//!
//! (e.g. 10 container-time at 10 % progress → 100 container-time), and
//! ranks the job by `precise service of past stages + estimate for the
//! current stage`. Over-estimates are benign — they only delay the job
//! itself — while under-estimates delay *other* small jobs (§III-B), so
//! the estimate is clamped from below by the service already attained and
//! is only trusted once progress clears a small floor.

use lasmq_simulator::{JobView, Service};

/// The service amount used for queue placement of `view`'s job.
///
/// With `stage_awareness` off this is simply the attained service
/// (classic MLFQ demotion). With it on, the current stage's attained
/// service is replaced by the progress-scaled estimate, once
/// `stage_progress ≥ min_progress`.
///
/// # Examples
///
/// ```
/// use lasmq_core::estimate::effective_service;
/// use lasmq_simulator::{JobId, JobView, Service, SimTime};
///
/// # let mut view = JobView {
/// #     id: JobId::new(0), arrival: SimTime::ZERO, admitted_at: SimTime::ZERO,
/// #     priority: 1, attained: Service::from_container_secs(10.0),
/// #     attained_stage: Service::from_container_secs(10.0), stage_index: 0,
/// #     stage_count: 2, stage_progress: 0.1, remaining_tasks: 90,
/// #     unstarted_tasks: 80, containers_per_task: 1, held: 10, oracle: None,
/// # };
/// // The paper's example: 10 container-time at 10% progress -> 100.
/// assert_eq!(effective_service(&view, true, 0.05).as_container_secs(), 100.0);
/// // Without stage awareness, only what was actually attained counts.
/// assert_eq!(effective_service(&view, false, 0.05).as_container_secs(), 10.0);
/// ```
pub fn effective_service(view: &JobView, stage_awareness: bool, min_progress: f64) -> Service {
    let past = view.attained - view.attained_stage;
    let stage = if stage_awareness && view.stage_progress >= min_progress {
        // Progress ≥ min_progress > 0, so the division is well-defined;
        // never rank below what was genuinely consumed.
        (view.attained_stage / view.stage_progress).max(view.attained_stage)
    } else {
        view.attained_stage
    };
    past + stage
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasmq_simulator::{JobId, SimTime};

    fn view(attained: f64, attained_stage: f64, progress: f64) -> JobView {
        JobView {
            id: JobId::new(0),
            arrival: SimTime::ZERO,
            admitted_at: SimTime::ZERO,
            priority: 1,
            attained: Service::from_container_secs(attained),
            attained_stage: Service::from_container_secs(attained_stage),
            stage_index: 1,
            stage_count: 2,
            stage_progress: progress,
            remaining_tasks: 10,
            unstarted_tasks: 10,
            containers_per_task: 1,
            held: 0,
            oracle: None,
        }
    }

    #[test]
    fn paper_example_10_percent() {
        // 10 container-time attained at 10% progress => estimate 100.
        let v = view(10.0, 10.0, 0.1);
        assert_eq!(effective_service(&v, true, 0.05).as_container_secs(), 100.0);
    }

    #[test]
    fn past_stages_stay_precise() {
        // 40 from finished stages + 10 in the current stage at 50%.
        let v = view(50.0, 10.0, 0.5);
        assert_eq!(
            effective_service(&v, true, 0.05).as_container_secs(),
            40.0 + 20.0
        );
    }

    #[test]
    fn estimate_never_below_attained() {
        // Progress counters can run ahead of service accounting; the
        // estimate must not *undercut* real consumption.
        let v = view(30.0, 30.0, 0.99);
        let e = effective_service(&v, true, 0.05);
        assert!(e.as_container_secs() >= 30.0);
    }

    #[test]
    fn low_progress_is_not_trusted() {
        let v = view(1.0, 1.0, 0.01);
        // 1/0.01 = 100 would be wild; below the floor we keep 1.
        assert_eq!(effective_service(&v, true, 0.05).as_container_secs(), 1.0);
    }

    #[test]
    fn disabled_awareness_is_plain_attained() {
        let v = view(50.0, 10.0, 0.5);
        assert_eq!(effective_service(&v, false, 0.05).as_container_secs(), 50.0);
    }

    #[test]
    fn zero_progress_zero_attained() {
        let v = view(0.0, 0.0, 0.0);
        assert_eq!(effective_service(&v, true, 0.05), Service::ZERO);
    }
}
