//! Configuration of the LAS_MQ scheduler.
//!
//! §III-E of the paper: thresholds grow exponentially (`αᵢ₊₁ = p · αᵢ`),
//! and "in our experiments, we simply set the number of queues as 10 and
//! the threshold of the first queue as 100" (container-seconds). The
//! trace-driven simulations use a first threshold of 1 (§V-C1). Everything
//! the paper varies — and the two design features ablated in Fig. 3 — is a
//! knob here.

use serde::{Deserialize, Serialize};

use lasmq_simulator::Service;

/// How the cluster is divided among the priority queues each pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum QueueSharing {
    /// Weighted fair sharing across queues — the paper's choice, which
    /// "avoids starvation in lower priority queues" (§III-A).
    #[default]
    Weighted,
    /// Strict priority: queue *i* is served only from what queues
    /// `0..i` left over (the DLAS/Aalo discipline the paper cites as
    /// related work). Provided for comparison; can starve large jobs.
    StrictPriority,
}

/// How jobs are ordered *within* one queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum QueueOrdering {
    /// By the number of containers the job's remaining tasks (including
    /// running ones) would use, ascending — the paper's contribution
    /// (§III-C), which lets more jobs finish their remaining tasks
    /// sooner while keeping the order stable.
    #[default]
    RemainingDemand,
    /// Plain arrival order (the "good start" the paper improves upon).
    Fifo,
}

/// Relative weights of the `k` queues under [`QueueSharing::Weighted`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QueueWeights {
    /// All queues weigh the same.
    Equal,
    /// Queue `i+1` weighs `1/ratio` of queue `i`: higher-priority queues
    /// get geometrically larger shares. `ratio = 2` is the default; larger
    /// ratios push the scheduler toward strict priority, `1` toward equal
    /// sharing — the fairness knob of §VII.
    Geometric {
        /// The decay ratio between consecutive queues (must be ≥ 1).
        ratio: f64,
    },
    /// Explicit per-queue weights (must match the queue count).
    Custom(Vec<f64>),
}

impl QueueWeights {
    /// Materializes the weight vector for `k` queues, highest priority
    /// first.
    ///
    /// # Panics
    ///
    /// Panics if a custom vector's length differs from `k`, contains a
    /// non-finite or negative weight, or a geometric ratio is below 1.
    pub fn vector(&self, k: usize) -> Vec<f64> {
        match self {
            QueueWeights::Equal => vec![1.0; k],
            QueueWeights::Geometric { ratio } => {
                assert!(
                    ratio.is_finite() && *ratio >= 1.0,
                    "geometric ratio must be >= 1"
                );
                (0..k).map(|i| ratio.powi(-(i as i32))).collect()
            }
            QueueWeights::Custom(weights) => {
                assert_eq!(weights.len(), k, "custom weights must cover every queue");
                for &w in weights {
                    assert!(w.is_finite() && w >= 0.0, "weights must be non-negative");
                }
                weights.clone()
            }
        }
    }
}

impl Default for QueueWeights {
    fn default() -> Self {
        QueueWeights::Geometric { ratio: 2.0 }
    }
}

/// Full LAS_MQ configuration.
///
/// # Examples
///
/// The paper's testbed setting (k = 10, α₁ = 100, p = 10):
///
/// ```
/// use lasmq_core::LasMqConfig;
///
/// let config = LasMqConfig::paper_experiments();
/// assert_eq!(config.num_queues(), 10);
/// assert_eq!(config.thresholds()[0].as_container_secs(), 100.0);
/// assert_eq!(config.thresholds()[1].as_container_secs(), 1_000.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LasMqConfig {
    num_queues: usize,
    first_threshold: f64,
    step: f64,
    weights: QueueWeights,
    sharing: QueueSharing,
    ordering: QueueOrdering,
    stage_awareness: bool,
    min_progress_for_estimate: f64,
}

impl LasMqConfig {
    /// The paper's testbed configuration: 10 queues, first threshold 100
    /// container-seconds, step 10, weighted sharing, demand ordering and
    /// stage awareness on.
    pub fn paper_experiments() -> Self {
        LasMqConfig {
            num_queues: 10,
            first_threshold: 100.0,
            step: 10.0,
            weights: QueueWeights::default(),
            sharing: QueueSharing::default(),
            ordering: QueueOrdering::default(),
            stage_awareness: true,
            min_progress_for_estimate: 0.05,
        }
    }

    /// The paper's trace-simulation configuration: first threshold of
    /// 1 service unit (§V-C1), and the two Hadoop-specific features —
    /// stage awareness and task-count in-queue ordering — disabled,
    /// because the trace simulator replays stage-less `(size, attained)`
    /// jobs that cannot express them (they are evaluated on the testbed
    /// workload in Figs. 3, 5 and 6). With them off, in-queue service is
    /// FIFO and demotion is purely attained-service-driven, as in the
    /// paper's simulation.
    pub fn paper_simulations() -> Self {
        LasMqConfig::paper_experiments()
            .with_first_threshold(1.0)
            .with_stage_awareness(false)
            .with_ordering(QueueOrdering::Fifo)
    }

    /// Sets the number of queues `k` (Fig. 8(a) sweeps 1–10).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn with_num_queues(mut self, k: usize) -> Self {
        assert!(k >= 1, "at least one queue is required");
        self.num_queues = k;
        self
    }

    /// Sets the first queue's demotion threshold, in container-seconds
    /// (Fig. 8(b) sweeps 10⁻³–10).
    ///
    /// # Panics
    ///
    /// Panics if the threshold is not positive and finite.
    pub fn with_first_threshold(mut self, threshold: f64) -> Self {
        assert!(
            threshold.is_finite() && threshold > 0.0,
            "threshold must be positive"
        );
        self.first_threshold = threshold;
        self
    }

    /// Sets the multiplicative step `p` between thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not greater than 1.
    pub fn with_step(mut self, step: f64) -> Self {
        assert!(step.is_finite() && step > 1.0, "step must exceed 1");
        self.step = step;
        self
    }

    /// Sets the across-queue weights.
    pub fn with_weights(mut self, weights: QueueWeights) -> Self {
        self.weights = weights;
        self
    }

    /// Sets the across-queue sharing discipline.
    pub fn with_sharing(mut self, sharing: QueueSharing) -> Self {
        self.sharing = sharing;
        self
    }

    /// Sets the in-queue ordering (Fig. 3's second ablated feature).
    pub fn with_ordering(mut self, ordering: QueueOrdering) -> Self {
        self.ordering = ordering;
        self
    }

    /// Enables or disables stage awareness (Fig. 3's first ablated
    /// feature).
    pub fn with_stage_awareness(mut self, enabled: bool) -> Self {
        self.stage_awareness = enabled;
        self
    }

    /// Minimum stage progress before the stage-awareness estimate is
    /// trusted (guards against wild division by near-zero progress).
    ///
    /// # Panics
    ///
    /// Panics if outside `(0, 1]`.
    pub fn with_min_progress_for_estimate(mut self, min_progress: f64) -> Self {
        assert!(
            min_progress > 0.0 && min_progress <= 1.0,
            "minimum progress must be in (0, 1]"
        );
        self.min_progress_for_estimate = min_progress;
        self
    }

    /// Number of queues `k`.
    pub fn num_queues(&self) -> usize {
        self.num_queues
    }

    /// The step `p`.
    pub fn step(&self) -> f64 {
        self.step
    }

    /// The across-queue sharing discipline.
    pub fn sharing(&self) -> QueueSharing {
        self.sharing
    }

    /// The in-queue ordering.
    pub fn ordering(&self) -> QueueOrdering {
        self.ordering
    }

    /// Whether stage awareness is on.
    pub fn stage_awareness(&self) -> bool {
        self.stage_awareness
    }

    /// Minimum progress before estimates apply.
    pub fn min_progress_for_estimate(&self) -> f64 {
        self.min_progress_for_estimate
    }

    /// The demotion thresholds `α₁ … α_{k−1}` (one fewer than queues):
    /// `αᵢ₊₁ = p · αᵢ` (§III-E).
    pub fn thresholds(&self) -> Vec<Service> {
        (0..self.num_queues.saturating_sub(1))
            .map(|i| Service::from_container_secs(self.first_threshold * self.step.powi(i as i32)))
            .collect()
    }

    /// The materialized queue weight vector.
    pub fn weight_vector(&self) -> Vec<f64> {
        self.weights.vector(self.num_queues)
    }
}

impl Default for LasMqConfig {
    /// [`LasMqConfig::paper_experiments`].
    fn default() -> Self {
        LasMqConfig::paper_experiments()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_grow_exponentially() {
        let t = LasMqConfig::paper_experiments().thresholds();
        assert_eq!(t.len(), 9);
        for (i, pair) in t.windows(2).enumerate() {
            let ratio = pair[1].as_container_secs() / pair[0].as_container_secs();
            assert!((ratio - 10.0).abs() < 1e-9, "ratio at {i} was {ratio}");
        }
    }

    #[test]
    fn single_queue_has_no_thresholds() {
        let c = LasMqConfig::paper_experiments().with_num_queues(1);
        assert!(c.thresholds().is_empty());
        assert_eq!(c.weight_vector(), vec![1.0]);
    }

    #[test]
    fn simulation_preset_uses_unit_threshold() {
        let c = LasMqConfig::paper_simulations();
        assert_eq!(c.thresholds()[0].as_container_secs(), 1.0);
        assert_eq!(c.num_queues(), 10);
    }

    #[test]
    fn geometric_weights_decay() {
        let w = QueueWeights::Geometric { ratio: 2.0 }.vector(4);
        assert_eq!(w, vec![1.0, 0.5, 0.25, 0.125]);
    }

    #[test]
    fn equal_weights_are_flat() {
        assert_eq!(QueueWeights::Equal.vector(3), vec![1.0; 3]);
    }

    #[test]
    fn custom_weights_roundtrip() {
        let w = QueueWeights::Custom(vec![3.0, 1.0]).vector(2);
        assert_eq!(w, vec![3.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "cover every queue")]
    fn custom_weights_length_checked() {
        let _ = QueueWeights::Custom(vec![1.0]).vector(2);
    }

    #[test]
    #[should_panic(expected = "must exceed 1")]
    fn step_of_one_rejected() {
        let _ = LasMqConfig::paper_experiments().with_step(1.0);
    }

    #[test]
    #[should_panic(expected = "at least one queue")]
    fn zero_queues_rejected() {
        let _ = LasMqConfig::paper_experiments().with_num_queues(0);
    }

    #[test]
    fn serde_roundtrip() {
        let c = LasMqConfig::paper_experiments()
            .with_num_queues(5)
            .with_weights(QueueWeights::Equal)
            .with_ordering(QueueOrdering::Fifo);
        let json = serde_json::to_string(&c).unwrap();
        let back: LasMqConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
