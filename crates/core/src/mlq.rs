//! The multilevel queue data structure (Fig. 2 of the paper).
//!
//! `k` priority queues; every new job enters queue 1 (index 0, highest
//! priority) and is *demoted* — never promoted — once the service it has
//! received (or is estimated to receive, with stage awareness) exceeds its
//! queue's threshold. Demotion is monotonic in the *maximum* effective
//! service observed so far, so a temporarily shrinking estimate cannot
//! bounce a job back up and destabilize the ordering.

use lasmq_simulator::{JobId, Service};

#[derive(Debug, Clone, Copy)]
struct Entry {
    queue: usize,
    /// The job's current position within `queues[queue]`, kept in sync on
    /// every mutation so membership changes are O(1) instead of a linear
    /// scan. Positions are only meaningful *between* mutations; sorting a
    /// queue rewrites them wholesale.
    pos: usize,
    seq: u64,
    max_effective: f64,
}

/// Queue membership bookkeeping for LAS_MQ.
///
/// # Examples
///
/// ```
/// use lasmq_core::mlq::MultilevelQueue;
/// use lasmq_simulator::{JobId, Service};
///
/// let thresholds = vec![Service::from_container_secs(100.0)];
/// let mut mlq = MultilevelQueue::new(2);
/// let job = JobId::new(0);
/// mlq.insert(job);
/// assert_eq!(mlq.queue_of(job), Some(0));
/// mlq.observe(job, Service::from_container_secs(150.0), &thresholds);
/// assert_eq!(mlq.queue_of(job), Some(1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MultilevelQueue {
    queues: Vec<Vec<JobId>>,
    /// Per-job entries addressed by `JobId::index()`. Job ids are dense
    /// per run, so a flat vector replaces the former `HashMap` — the entry
    /// lookup is on the per-pass hot path (several per refreshed job, plus
    /// one per element inside every queue sort).
    index: Vec<Option<Entry>>,
    /// Number of `Some` entries in `index` (= total queued jobs).
    live: usize,
    next_seq: u64,
    /// Per-queue "order may be stale" flags: set by membership changes
    /// (insert, demotion, swap-removal) and by callers whose sort keys
    /// changed ([`mark_queue_dirty`](Self::mark_queue_dirty)); cleared by
    /// the sort methods. A clean queue's stored order *is* its sorted
    /// order, so incremental schedulers skip re-sorting it — sound
    /// whenever the sort key is a strict total order (LAS_MQ tie-breaks on
    /// the unique arrival seq), because then the sorted order is unique.
    dirty: Vec<bool>,
}

impl MultilevelQueue {
    /// `k` empty queues.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "at least one queue is required");
        MultilevelQueue {
            queues: vec![Vec::new(); k],
            index: Vec::new(),
            live: 0,
            next_seq: 0,
            dirty: vec![true; k],
        }
    }

    fn entry(&self, job: JobId) -> Option<&Entry> {
        self.index.get(job.index()).and_then(Option::as_ref)
    }

    fn entry_mut(&mut self, job: JobId) -> Option<&mut Entry> {
        self.index.get_mut(job.index()).and_then(Option::as_mut)
    }

    /// Grows the entry table to cover `job`, then stores `entry` there.
    fn index_insert(&mut self, job: JobId, entry: Entry) {
        let idx = job.index();
        if idx >= self.index.len() {
            self.index.resize(idx + 1, None);
        }
        debug_assert!(self.index[idx].is_none(), "{job} inserted twice");
        self.index[idx] = Some(entry);
        self.live += 1;
    }

    /// Number of queues.
    pub fn num_queues(&self) -> usize {
        self.queues.len()
    }

    /// Total jobs across all queues.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no job is enqueued.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Admits a new job to the highest-priority queue. Idempotent: a job
    /// already present keeps its position.
    pub fn insert(&mut self, job: JobId) {
        if self.entry(job).is_some() {
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.index_insert(
            job,
            Entry {
                queue: 0,
                pos: self.queues[0].len(),
                seq,
                max_effective: 0.0,
            },
        );
        self.queues[0].push(job);
        self.dirty[0] = true;
    }

    /// Removes a completed job in O(1). Idempotent.
    ///
    /// Uses swap-removal, so the relative order of the remaining jobs in
    /// the queue may change; callers that care about order re-sort every
    /// queue before reading it (as LAS_MQ does each scheduling pass).
    pub fn remove(&mut self, job: JobId) {
        if let Some(entry) = self.index.get_mut(job.index()).and_then(Option::take) {
            self.live -= 1;
            self.swap_out(entry.queue, entry.pos);
            self.dirty[entry.queue] = true;
        }
    }

    /// Removes the job at `queues[queue][pos]` by swap-removal, patching
    /// the displaced job's recorded position.
    fn swap_out(&mut self, queue: usize, pos: usize) {
        self.queues[queue].swap_remove(pos);
        if let Some(&moved) = self.queues[queue].get(pos) {
            self.entry_mut(moved)
                .expect("queued job must be indexed")
                .pos = pos;
        }
    }

    /// Rewrites the recorded positions of every job in queue `i` (after a
    /// sort reordered the queue).
    /// Rewrites the `pos` fields of queue `i` after a sort. A queued job
    /// with no index entry is the same broken invariant
    /// [`sort_queue_with_seq`](Self::sort_queue_with_seq) documents:
    /// debug builds panic, release builds skip the orphan so the
    /// documented sort-last fallback actually survives the full sort
    /// path instead of crashing one call later.
    fn reindex(&mut self, i: usize) {
        let queue = std::mem::take(&mut self.queues[i]);
        for (pos, &job) in queue.iter().enumerate() {
            match self.entry_mut(job) {
                Some(entry) => entry.pos = pos,
                None => debug_assert!(false, "{job} is queued but missing from the index"),
            }
        }
        self.queues[i] = queue;
    }

    /// The queue index a job currently sits in.
    pub fn queue_of(&self, job: JobId) -> Option<usize> {
        self.entry(job).map(|e| e.queue)
    }

    /// The arrival sequence number of a job (its FIFO rank).
    pub fn seq_of(&self, job: JobId) -> Option<u64> {
        self.entry(job).map(|e| e.seq)
    }

    /// Jobs in queue `i`, in current order.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn jobs_in(&self, i: usize) -> &[JobId] {
        &self.queues[i]
    }

    /// Records an observation of a job's effective service and demotes it
    /// if the (monotonically tracked) maximum now exceeds its queue's
    /// threshold — Algorithm 1's movement rule: the job lands in the first
    /// queue whose threshold is at least the observed service.
    ///
    /// Returns the job's (possibly new) queue, or `None` for unknown jobs.
    pub fn observe(
        &mut self,
        job: JobId,
        effective: Service,
        thresholds: &[Service],
    ) -> Option<usize> {
        debug_assert_eq!(thresholds.len() + 1, self.queues.len());
        let entry = self.entry_mut(job)?;
        entry.max_effective = entry.max_effective.max(effective.as_container_secs());
        // Relative epsilon: service accrual and the stage-awareness
        // division both carry float rounding, and job sizes routinely sit
        // *exactly on* a threshold (e.g. size-10⁴ jobs vs α₅ = 10⁴). A
        // nanoscale overshoot must not demote a job past the queue its true
        // service belongs to.
        let target = thresholds
            .iter()
            .position(|t| {
                let t = t.as_container_secs();
                entry.max_effective <= t * (1.0 + 1e-6)
            })
            .unwrap_or(thresholds.len());
        let current = entry.queue;
        if target <= current {
            return Some(current);
        }
        let pos = entry.pos;
        entry.queue = target;
        self.swap_out(current, pos);
        let new_pos = self.queues[target].len();
        self.queues[target].push(job);
        self.entry_mut(job).expect("observed job is indexed").pos = new_pos;
        self.dirty[current] = true;
        self.dirty[target] = true;
        Some(target)
    }

    /// Sorts queue `i` by `key` ascending (stable, so equal keys keep
    /// their existing relative order — note removals and demotions use
    /// swap-removal, so the pre-sort order is unspecified between sorts).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn sort_queue_by_key<K: Ord>(&mut self, i: usize, mut key: impl FnMut(JobId) -> K) {
        self.queues[i].sort_by_key(|&j| key(j));
        self.reindex(i);
        self.dirty[i] = false;
    }

    /// Sorts queue `i` ascending by `key(job, seq)`, where `seq` is the
    /// job's arrival sequence number — the natural FIFO tie-breaker for
    /// the paper's demand-based ordering.
    ///
    /// Every queued job has an index entry by construction; if that
    /// invariant were ever broken, debug builds panic here, and release
    /// builds fall back to sorting the orphaned job last (`u64::MAX`)
    /// rather than crashing mid-experiment.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn sort_queue_with_seq<K: Ord>(&mut self, i: usize, mut key: impl FnMut(JobId, u64) -> K) {
        let index = &self.index;
        self.queues[i].sort_by_key(|&j| {
            let seq = match index.get(j.index()).and_then(Option::as_ref) {
                Some(e) => e.seq,
                None => {
                    debug_assert!(false, "{j} is queued but missing from the index");
                    u64::MAX
                }
            };
            key(j, seq)
        });
        self.reindex(i);
        self.dirty[i] = false;
    }

    /// Whether queue `i`'s stored order may be stale (see the `dirty` field
    /// docs). Freshly built structures report every queue dirty.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn queue_dirty(&self, i: usize) -> bool {
        self.dirty[i]
    }

    /// Flags queue `i` for re-sorting — for callers whose *sort keys*
    /// changed in ways this structure cannot see (LAS_MQ marks a job's
    /// queue when the job's remaining demand moved).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn mark_queue_dirty(&mut self, i: usize) {
        self.dirty[i] = true;
    }

    /// Per-queue job counts (handy for tests and introspection).
    pub fn queue_lengths(&self) -> Vec<usize> {
        self.queues.iter().map(Vec::len).collect()
    }

    /// The maximum effective service observed for a job so far (the
    /// monotonic demotion key). `None` for unknown jobs.
    pub fn max_effective_of(&self, job: JobId) -> Option<f64> {
        self.entry(job).map(|e| e.max_effective)
    }

    /// The next arrival sequence number to be issued. Together with
    /// per-job [`seq_of`](Self::seq_of) values this fully determines FIFO
    /// tie-breaking, so snapshots capture it.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Re-inserts a snapshotted job directly into queue `queue` with its
    /// original arrival `seq` and monotonic `max_effective` key, preserving
    /// in-queue order (jobs must be replayed queue by queue in their
    /// snapshotted order). Finish by calling
    /// [`set_next_seq`](Self::set_next_seq).
    ///
    /// # Errors
    ///
    /// Returns a message if `queue` is out of range or the job is already
    /// present.
    pub fn restore_job(
        &mut self,
        job: JobId,
        queue: usize,
        seq: u64,
        max_effective: f64,
    ) -> Result<(), String> {
        if queue >= self.queues.len() {
            return Err(format!(
                "queue {queue} out of range (structure has {})",
                self.queues.len()
            ));
        }
        if self.entry(job).is_some() {
            return Err(format!("{job} restored twice"));
        }
        self.index_insert(
            job,
            Entry {
                queue,
                pos: self.queues[queue].len(),
                seq,
                max_effective,
            },
        );
        self.queues[queue].push(job);
        self.dirty[queue] = true;
        Ok(())
    }

    /// Sets the next arrival sequence number (the last step of restoring a
    /// snapshot).
    ///
    /// # Errors
    ///
    /// Returns a message if `next_seq` is not beyond every restored job's
    /// seq (later inserts would collide with restored FIFO ranks).
    pub fn set_next_seq(&mut self, next_seq: u64) -> Result<(), String> {
        if let Some(max_seq) = self.index.iter().flatten().map(|e| e.seq).max() {
            if next_seq <= max_seq {
                return Err(format!(
                    "next_seq {next_seq} collides with an issued seq {max_seq}"
                ));
            }
        }
        self.next_seq = next_seq;
        Ok(())
    }

    /// Checks the `index`/`queues` cross-invariants without panicking:
    /// every queued job has an index entry pointing back at its exact queue
    /// and position (which also guarantees each job appears in at most one
    /// queue slot), every seq was actually issued, and the index holds
    /// nothing else. O(total jobs).
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found. Used by the
    /// engine's runtime invariant checker via
    /// [`Scheduler::check_consistency`](lasmq_simulator::Scheduler::check_consistency).
    pub fn check_consistent(&self) -> Result<(), String> {
        let queued: usize = self.queues.iter().map(Vec::len).sum();
        let indexed = self.index.iter().flatten().count();
        if indexed != self.live {
            return Err(format!(
                "{indexed} live index entries but a recorded count of {}",
                self.live
            ));
        }
        if queued != indexed {
            return Err(format!(
                "{queued} queued job slot(s) but {indexed} index entries"
            ));
        }
        for (qi, queue) in self.queues.iter().enumerate() {
            for (pos, &job) in queue.iter().enumerate() {
                let Some(entry) = self.entry(job) else {
                    return Err(format!("{job} is queued but missing from the index"));
                };
                if entry.queue != qi {
                    return Err(format!(
                        "{job} sits in queue {qi} but is indexed in queue {}",
                        entry.queue
                    ));
                }
                if entry.pos != pos {
                    return Err(format!(
                        "{job} sits at position {pos} of queue {qi} but is indexed at {}",
                        entry.pos
                    ));
                }
                if entry.seq >= self.next_seq {
                    return Err(format!(
                        "{job} carries seq {} but only {} have been issued",
                        entry.seq, self.next_seq
                    ));
                }
            }
        }
        Ok(())
    }

    /// Panicking wrapper around [`check_consistent`](Self::check_consistent),
    /// for tests.
    ///
    /// # Panics
    ///
    /// Panics if the structure is inconsistent.
    pub fn assert_consistent(&self) {
        if let Err(detail) = self.check_consistent() {
            panic!("multilevel queue inconsistent: {detail}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn thresholds(values: &[f64]) -> Vec<Service> {
        values
            .iter()
            .map(|&v| Service::from_container_secs(v))
            .collect()
    }

    #[test]
    fn new_jobs_enter_queue_zero_in_order() {
        let mut mlq = MultilevelQueue::new(3);
        for i in 0..4 {
            mlq.insert(JobId::new(i));
        }
        assert_eq!(mlq.jobs_in(0).len(), 4);
        assert_eq!(mlq.seq_of(JobId::new(0)), Some(0));
        assert_eq!(mlq.seq_of(JobId::new(3)), Some(3));
        assert_eq!(mlq.len(), 4);
    }

    #[test]
    fn demotion_follows_thresholds() {
        let t = thresholds(&[10.0, 100.0]);
        let mut mlq = MultilevelQueue::new(3);
        let j = JobId::new(0);
        mlq.insert(j);
        assert_eq!(
            mlq.observe(j, Service::from_container_secs(5.0), &t),
            Some(0)
        );
        assert_eq!(
            mlq.observe(j, Service::from_container_secs(50.0), &t),
            Some(1)
        );
        assert_eq!(
            mlq.observe(j, Service::from_container_secs(5_000.0), &t),
            Some(2)
        );
        assert_eq!(mlq.queue_lengths(), vec![0, 0, 1]);
    }

    #[test]
    fn demotion_is_monotonic_under_shrinking_estimates() {
        let t = thresholds(&[10.0]);
        let mut mlq = MultilevelQueue::new(2);
        let j = JobId::new(0);
        mlq.insert(j);
        mlq.observe(j, Service::from_container_secs(20.0), &t);
        assert_eq!(mlq.queue_of(j), Some(1));
        // The estimate later shrinks below the threshold — no promotion.
        mlq.observe(j, Service::from_container_secs(1.0), &t);
        assert_eq!(mlq.queue_of(j), Some(1));
    }

    #[test]
    fn jobs_can_skip_queues() {
        // A stage-awareness estimate can jump several thresholds at once.
        let t = thresholds(&[1.0, 10.0, 100.0, 1_000.0]);
        let mut mlq = MultilevelQueue::new(5);
        let j = JobId::new(0);
        mlq.insert(j);
        mlq.observe(j, Service::from_container_secs(500.0), &t);
        assert_eq!(mlq.queue_of(j), Some(3));
    }

    #[test]
    fn remove_is_idempotent_and_insert_too() {
        let mut mlq = MultilevelQueue::new(2);
        let j = JobId::new(7);
        mlq.insert(j);
        mlq.insert(j);
        assert_eq!(mlq.len(), 1);
        mlq.remove(j);
        mlq.remove(j);
        assert!(mlq.is_empty());
        assert_eq!(mlq.queue_of(j), None);
    }

    #[test]
    fn sort_queue_reorders() {
        let mut mlq = MultilevelQueue::new(1);
        for i in 0..3 {
            mlq.insert(JobId::new(i));
        }
        // Sort descending by id via a reversing key.
        mlq.sort_queue_by_key(0, |j| std::cmp::Reverse(j.index()));
        let order: Vec<usize> = mlq.jobs_in(0).iter().map(|j| j.index()).collect();
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn swap_removal_keeps_positions_consistent() {
        let t = thresholds(&[10.0]);
        let mut mlq = MultilevelQueue::new(2);
        for i in 0..5 {
            mlq.insert(JobId::new(i));
        }
        mlq.remove(JobId::new(1)); // the tail job is swapped into slot 1
        mlq.assert_consistent();
        mlq.observe(JobId::new(0), Service::from_container_secs(50.0), &t);
        mlq.assert_consistent();
        mlq.remove(JobId::new(4));
        mlq.assert_consistent();
        assert_eq!(mlq.queue_lengths(), vec![2, 1]);
        mlq.sort_queue_by_key(0, |j| j.index());
        mlq.assert_consistent();
        let order: Vec<usize> = mlq.jobs_in(0).iter().map(|j| j.index()).collect();
        assert_eq!(order, vec![2, 3]);
    }

    #[test]
    fn observe_unknown_job_is_none() {
        let mut mlq = MultilevelQueue::new(2);
        assert_eq!(
            mlq.observe(JobId::new(9), Service::ZERO, &thresholds(&[1.0])),
            None
        );
    }

    #[test]
    #[should_panic(expected = "at least one queue")]
    fn zero_queues_panics() {
        let _ = MultilevelQueue::new(0);
    }

    /// Plants a job in queue 0 with no index entry — the invariant breach
    /// `sort_queue_with_seq`'s fallback exists for. Test-only: no public
    /// API can produce this state.
    fn plant_orphan(mlq: &mut MultilevelQueue, id: u32) {
        mlq.queues[0].push(JobId::new(id));
    }

    /// Release builds must hit the documented `u64::MAX` fallback: the
    /// orphaned job sorts last and the indexed jobs keep their seq order,
    /// instead of the sort crashing mid-experiment. (Debug builds panic on
    /// the same state — see `orphaned_job_panics_in_debug`.)
    #[cfg(not(debug_assertions))]
    #[test]
    fn orphaned_job_sorts_last_in_release() {
        let mut mlq = MultilevelQueue::new(2);
        for i in 0..3 {
            mlq.insert(JobId::new(i));
        }
        plant_orphan(&mut mlq, 9);
        // Sort by seq alone: indexed jobs keep arrival order; the orphan's
        // u64::MAX fallback key places it last, and a second sort is
        // stable about it.
        mlq.sort_queue_with_seq(0, |_, seq| seq);
        let order: Vec<usize> = mlq.jobs_in(0).iter().map(|j| j.index()).collect();
        assert_eq!(order, vec![0, 1, 2, 9]);
        mlq.sort_queue_with_seq(0, |_, seq| seq);
        let again: Vec<usize> = mlq.jobs_in(0).iter().map(|j| j.index()).collect();
        assert_eq!(again, vec![0, 1, 2, 9]);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "missing from the index")]
    fn orphaned_job_panics_in_debug() {
        let mut mlq = MultilevelQueue::new(2);
        mlq.insert(JobId::new(0));
        plant_orphan(&mut mlq, 9);
        mlq.sort_queue_with_seq(0, |_, seq| seq);
    }
}
