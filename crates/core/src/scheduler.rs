//! The LAS_MQ scheduler: Algorithms 1 and 2 of the paper.
//!
//! Each scheduling pass:
//!
//! 1. **Update job orders** (Algorithm 1): compute every job's effective
//!    service — precise past-stage service plus the stage-aware estimate
//!    for the current stage (§III-B) — demote jobs whose service exceeds
//!    their queue's threshold, and sort each queue by the container demand
//!    of the jobs' remaining tasks (§III-C).
//! 2. **Job scheduling** (Algorithm 2): split the cluster across queues by
//!    weighted fair sharing (avoiding starvation of demoted jobs), walk
//!    each queue in order granting `min(rᵢ, jrt)` containers per job, and
//!    finally share any remaining containers with jobs that can still use
//!    them (work conservation).
//!
//! Both steps run *incrementally* when the engine supplies a changed-job
//! hint ([`SchedContext::changed`]): only changed jobs are re-observed (an
//! unchanged view implies an unchanged effective service, and demotion is
//! monotonic, so unchanged jobs can never move), per-queue demand sums are
//! maintained as a running total, and a queue is only re-sorted when its
//! membership or a member's sort key actually moved. Without the hint the
//! scheduler falls back to the full per-pass recomputation, which produces
//! bit-identical plans.

use lasmq_simulator::{
    AllocationPlan, JobId, JobView, QueueDemotion, SchedContext, Scheduler, Service, SimTime,
};

use lasmq_schedulers::share::{weighted_shares_into, ShareRequest, ShareScratch};

use crate::config::{LasMqConfig, QueueOrdering, QueueSharing};
use crate::estimate::effective_service;
use crate::mlq::MultilevelQueue;

/// One queued job in a serialized LAS_MQ snapshot: its id, FIFO rank and
/// monotonic demotion key. Order within the queue list is the live order.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct QueuedJobState {
    job: u32,
    seq: u64,
    max_effective: f64,
}

/// A pending (undrained) demotion in a serialized LAS_MQ snapshot.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct DemotionState {
    job: u32,
    from_queue: u32,
    to_queue: u32,
    effective: f64,
}

/// The full serialized form of LAS_MQ's mutable state. Thresholds and
/// weights are *not* stored — they are pure functions of the configuration
/// and re-derived on restore, so a snapshot cannot smuggle in a
/// mismatched lineup.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct LasMqState {
    queues: Vec<Vec<QueuedJobState>>,
    next_seq: u64,
    demotions: Vec<DemotionState>,
}

/// Sentinel for [`CachedDemand::contrib_queue`]: the job currently
/// contributes demand to no queue.
const NO_QUEUE: u32 = u32::MAX;

/// Per-job demand snapshot from the last time the job's view was
/// refreshed. The defaults mirror the legacy full-pass fallbacks for jobs
/// without a view: `remaining_demand = u32::MAX` (sorts last) and
/// `max_useful = 0` (never granted), so an [`EMPTY`](CachedDemand::EMPTY)
/// entry behaves exactly like a missing per-pass lookup used to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CachedDemand {
    /// `JobView::remaining_demand` — the in-queue sort key.
    remaining_demand: u32,
    /// `JobView::max_useful_allocation` — the grant cap, also summed into
    /// [`LasMq::queue_demand`].
    max_useful: u32,
    /// Which queue's demand sum currently includes `max_useful`
    /// ([`NO_QUEUE`] if none).
    contrib_queue: u32,
}

impl CachedDemand {
    const EMPTY: CachedDemand = CachedDemand {
        remaining_demand: u32::MAX,
        max_useful: 0,
        contrib_queue: NO_QUEUE,
    };
}

/// The paper's contribution: multilevel-feedback-queue job scheduling
/// without prior size information.
///
/// # Examples
///
/// Running LAS_MQ in the simulator:
///
/// ```
/// use lasmq_core::{LasMq, LasMqConfig};
/// use lasmq_simulator::{
///     ClusterConfig, JobSpec, SimDuration, Simulation, StageKind, StageSpec, TaskSpec,
/// };
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let jobs = (0..4).map(|i| {
///     JobSpec::builder()
///         .arrival(lasmq_simulator::SimTime::from_secs(i))
///         .stage(StageSpec::uniform(
///             StageKind::Map,
///             4,
///             TaskSpec::new(SimDuration::from_secs(5)),
///         ))
///         .build()
/// });
/// let report = Simulation::builder()
///     .cluster(ClusterConfig::single_node(8))
///     .jobs(jobs)
///     .build(LasMq::new(LasMqConfig::paper_experiments()))?
///     .run();
/// assert!(report.all_completed());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LasMq {
    config: LasMqConfig,
    thresholds: Vec<lasmq_simulator::Service>,
    weights: Vec<f64>,
    mlq: MultilevelQueue,
    /// Demotions since the engine last drained them (telemetry).
    demotions: Vec<QueueDemotion>,
    /// Last-refreshed demand per job, indexed by `JobId::index()`
    /// ([`CachedDemand::EMPTY`] for jobs never seen or completed).
    job_cache: Vec<CachedDemand>,
    /// Running per-queue demand: `queue_demand[q]` is the sum of
    /// `max_useful` over every cached job contributing to queue `q` —
    /// maintained by [`refresh_job`](Self::refresh_job) and
    /// [`on_job_completed`](Scheduler::on_job_completed) so a pass never
    /// re-walks every queue member.
    queue_demand: Vec<u64>,
    /// Epoch-stamped per-job grants for the current pass, indexed by
    /// `JobId::index()`: an entry counts only if its stamp equals
    /// [`pass_epoch`](Self::pass_epoch). Replaces a per-pass `HashMap`
    /// without any per-pass clearing cost.
    granted: Vec<(u64, u32)>,
    /// Monotonic pass counter validating `granted` stamps. Starts at 0 and
    /// is bumped before use, so the zero stamp never matches.
    pass_epoch: u64,
    /// Reused per-pass buffers: capped per-queue demands, share requests,
    /// allotments and the share computation's working memory. Hold no
    /// meaningful state between passes.
    demands_buf: Vec<u32>,
    req_buf: Vec<ShareRequest>,
    allot_buf: Vec<u32>,
    share_scratch: ShareScratch,
    /// The `(capacity, demands)` inputs that produced the current
    /// `allot_buf`. Allotments are a pure function of those inputs (weights
    /// and sharing mode are fixed at construction), and the per-queue
    /// demands saturate at capacity, so busy periods repeat them pass after
    /// pass — a hit skips the whole weighted-share computation.
    allot_memo: Option<(u32, Vec<u32>)>,
}

impl LasMq {
    /// Creates the scheduler from its configuration.
    pub fn new(config: LasMqConfig) -> Self {
        let thresholds = config.thresholds();
        let weights = config.weight_vector();
        let mlq = MultilevelQueue::new(config.num_queues());
        let queue_demand = vec![0; config.num_queues()];
        LasMq {
            config,
            thresholds,
            weights,
            mlq,
            demotions: Vec::new(),
            job_cache: Vec::new(),
            queue_demand,
            granted: Vec::new(),
            pass_epoch: 0,
            demands_buf: Vec::new(),
            req_buf: Vec::new(),
            allot_buf: Vec::new(),
            share_scratch: ShareScratch::default(),
            allot_memo: None,
        }
    }

    /// With the paper's testbed defaults (k = 10, α₁ = 100, p = 10).
    pub fn with_paper_defaults() -> Self {
        LasMq::new(LasMqConfig::paper_experiments())
    }

    /// The active configuration.
    pub fn config(&self) -> &LasMqConfig {
        &self.config
    }

    /// The queue a job currently sits in (for tests and introspection).
    pub fn queue_of(&self, job: JobId) -> Option<usize> {
        self.mlq.queue_of(job)
    }

    /// Per-queue job counts.
    pub fn queue_lengths(&self) -> Vec<usize> {
        self.mlq.queue_lengths()
    }

    /// Algorithm 1, per job: refresh the job's effective service, demote it
    /// if warranted, and fold its current demand into the cache — moving
    /// its `max_useful` contribution to whichever queue it now sits in and
    /// flagging that queue for re-sorting if its sort key moved.
    ///
    /// Only *changed* jobs need this: demotion tracks the monotonic maximum
    /// of the effective service, and an unchanged view reproduces the same
    /// effective service, so re-observing an unchanged job is a no-op.
    fn refresh_job(&mut self, view: &JobView) {
        // Defensive: jobs normally enter via `on_job_admitted`. Callers
        // iterate views in admission order so defensively inserted jobs
        // receive deterministic sequence numbers.
        self.mlq.insert(view.id);
        let effective = effective_service(
            view,
            self.config.stage_awareness(),
            self.config.min_progress_for_estimate(),
        );
        let before = self.mlq.queue_of(view.id);
        let after = self.mlq.observe(view.id, effective, &self.thresholds);
        if let (Some(from), Some(to)) = (before, after) {
            if to != from {
                self.demotions.push(QueueDemotion {
                    job: view.id,
                    from_queue: from as u32,
                    to_queue: to as u32,
                    effective,
                });
            }
        }
        let current = after.expect("job was just inserted");

        let idx = view.id.index();
        if idx >= self.job_cache.len() {
            self.job_cache.resize(idx + 1, CachedDemand::EMPTY);
            self.granted.resize(idx + 1, (0, 0));
        }
        let old = self.job_cache[idx];
        let max_useful = view.max_useful_allocation();
        if old.contrib_queue != NO_QUEUE {
            self.queue_demand[old.contrib_queue as usize] -= u64::from(old.max_useful);
        }
        self.queue_demand[current] += u64::from(max_useful);
        let remaining_demand = view.remaining_demand();
        if remaining_demand != old.remaining_demand {
            // The in-queue sort key moved; membership changes (insert,
            // demotion) already flag their queues inside the structure.
            self.mlq.mark_queue_dirty(current);
        }
        self.job_cache[idx] = CachedDemand {
            remaining_demand,
            max_useful,
            contrib_queue: current as u32,
        };
    }

    /// How many containers each queue receives this pass, written into
    /// `self.allot_buf` (buffers reused across passes).
    fn queue_allotments(&mut self, capacity: u32) {
        match self.config.sharing() {
            QueueSharing::Weighted => {
                self.req_buf.clear();
                self.req_buf.extend(
                    self.demands_buf
                        .iter()
                        .zip(&self.weights)
                        .map(|(&demand, &weight)| ShareRequest::new(demand, weight)),
                );
                weighted_shares_into(
                    capacity,
                    &self.req_buf,
                    &mut self.share_scratch,
                    &mut self.allot_buf,
                );
            }
            QueueSharing::StrictPriority => {
                let mut remaining = capacity;
                self.allot_buf.clear();
                self.allot_buf
                    .extend(self.demands_buf.iter().map(|&demand| {
                        let r = demand.min(remaining);
                        remaining -= r;
                        r
                    }));
            }
        }
    }
}

impl Scheduler for LasMq {
    fn name(&self) -> &str {
        "LAS_MQ"
    }

    fn on_job_admitted(&mut self, view: &JobView, _now: SimTime) {
        self.mlq.insert(view.id);
    }

    fn on_job_completed(&mut self, job: JobId, _now: SimTime) {
        self.mlq.remove(job);
        if let Some(entry) = self.job_cache.get_mut(job.index()) {
            if entry.contrib_queue != NO_QUEUE {
                self.queue_demand[entry.contrib_queue as usize] -= u64::from(entry.max_useful);
            }
            *entry = CachedDemand::EMPTY;
        }
    }

    fn allocate(&mut self, ctx: &SchedContext<'_>) -> AllocationPlan {
        let mut plan = AllocationPlan::new();
        self.allocate_into(ctx, &mut plan);
        plan
    }

    fn allocate_into(&mut self, ctx: &SchedContext<'_>, plan: &mut AllocationPlan) {
        plan.clear();
        self.pass_epoch += 1;
        let views = ctx.jobs();

        // Algorithm 1: refresh effective service, demote, update the
        // demand cache — for changed jobs only when the engine says which
        // ones changed, otherwise from scratch for everyone.
        match ctx.changed() {
            Some(changed) => {
                for &slot in changed {
                    self.refresh_job(&views[slot]);
                }
            }
            None => {
                // No hint: discard the cache and rebuild it from every
                // view, which reproduces the legacy full pass bit for bit
                // (an EMPTY entry carries the legacy missing-view
                // fallbacks).
                for entry in &mut self.job_cache {
                    *entry = CachedDemand::EMPTY;
                }
                for demand in &mut self.queue_demand {
                    *demand = 0;
                }
                for i in 0..self.mlq.num_queues() {
                    self.mlq.mark_queue_dirty(i);
                }
                for view in views {
                    self.refresh_job(view);
                }
            }
        }

        // Re-sort only queues whose order may have moved. A clean queue's
        // stored order *is* its sorted order: both keys below tie-break on
        // the unique arrival seq, so the sorted order is total and unique.
        let LasMq {
            mlq,
            config,
            job_cache,
            ..
        } = self;
        let k = mlq.num_queues();
        for i in 0..k {
            if !mlq.queue_dirty(i) {
                continue;
            }
            match config.ordering() {
                QueueOrdering::RemainingDemand => {
                    mlq.sort_queue_with_seq(i, |job, seq| {
                        let demand = job_cache
                            .get(job.index())
                            .map(|c| c.remaining_demand)
                            .unwrap_or(u32::MAX);
                        (demand, seq)
                    });
                }
                QueueOrdering::Fifo => {
                    mlq.sort_queue_with_seq(i, |_, seq| seq);
                }
            }
        }

        let capacity = ctx.total_containers();

        // Per-queue useful demand, saturating at capacity — read straight
        // off the maintained running sums.
        self.demands_buf.clear();
        self.demands_buf.extend(
            self.queue_demand
                .iter()
                .map(|&sum| sum.min(u64::from(capacity)) as u32),
        );
        let memo_hit = matches!(
            &self.allot_memo,
            Some((cap, demands)) if *cap == capacity && *demands == self.demands_buf
        );
        if !memo_hit {
            self.queue_allotments(capacity);
            let (cap, demands) = self.allot_memo.get_or_insert_with(|| (0, Vec::new()));
            *cap = capacity;
            demands.clear();
            demands.extend_from_slice(&self.demands_buf);
        }

        // Algorithm 2: walk queues in priority order, granting
        // min(rᵢ, job demand) to each job in queue order.
        let LasMq {
            mlq,
            job_cache,
            granted,
            pass_epoch,
            allot_buf,
            ..
        } = self;
        let epoch = *pass_epoch;
        let mut assigned_total: u32 = 0;
        for (i, &allotment) in allot_buf.iter().enumerate().take(k) {
            let mut budget = allotment;
            for &job in mlq.jobs_in(i) {
                if budget == 0 {
                    break;
                }
                let max_useful = job_cache
                    .get(job.index())
                    .map(|c| c.max_useful)
                    .unwrap_or(0);
                let grant = max_useful.min(budget);
                if grant > 0 {
                    plan.push(job, grant);
                    granted[job.index()] = (epoch, grant);
                    budget -= grant;
                    assigned_total += grant;
                }
            }
        }

        // Work conservation (Algorithm 2, last line): hand every remaining
        // container to jobs that can still use one, highest queue first.
        let mut leftover = capacity - assigned_total.min(capacity);
        if leftover > 0 {
            'outer: for i in 0..k {
                for &job in mlq.jobs_in(i) {
                    if leftover == 0 {
                        break 'outer;
                    }
                    let max_useful = job_cache
                        .get(job.index())
                        .map(|c| c.max_useful)
                        .unwrap_or(0);
                    let already = match granted.get(job.index()) {
                        Some(&(stamp, g)) if stamp == epoch => g,
                        _ => 0,
                    };
                    let unmet = max_useful.saturating_sub(already);
                    let extra = unmet.min(leftover);
                    if extra > 0 {
                        // Last entry wins: raise the job's target.
                        plan.push(job, already + extra);
                        granted[job.index()] = (epoch, already + extra);
                        leftover -= extra;
                    }
                }
            }
        }
    }

    fn queue_depths(&self) -> Option<Vec<u32>> {
        Some(self.mlq.queue_lengths().iter().map(|&n| n as u32).collect())
    }

    fn drain_demotions(&mut self) -> Vec<QueueDemotion> {
        std::mem::take(&mut self.demotions)
    }

    fn snapshot_state(&self) -> Option<String> {
        let queues: Vec<Vec<QueuedJobState>> = (0..self.mlq.num_queues())
            .map(|i| {
                self.mlq
                    .jobs_in(i)
                    .iter()
                    .map(|&j| QueuedJobState {
                        job: u32::from(j),
                        seq: self.mlq.seq_of(j).expect("queued job has a seq"),
                        max_effective: self
                            .mlq
                            .max_effective_of(j)
                            .expect("queued job has a demotion key"),
                    })
                    .collect()
            })
            .collect();
        let state = LasMqState {
            queues,
            next_seq: self.mlq.next_seq(),
            demotions: self
                .demotions
                .iter()
                .map(|d| DemotionState {
                    job: u32::from(d.job),
                    from_queue: d.from_queue,
                    to_queue: d.to_queue,
                    effective: d.effective.as_container_secs(),
                })
                .collect(),
        };
        Some(serde_json::to_string(&state).expect("LAS_MQ state serialization cannot fail"))
    }

    fn restore_state(&mut self, state: &str) -> Result<(), String> {
        let state: LasMqState =
            serde_json::from_str(state).map_err(|e| format!("malformed LAS_MQ state: {e}"))?;
        if state.queues.len() != self.config.num_queues() {
            return Err(format!(
                "snapshot has {} queues but this configuration has {}",
                state.queues.len(),
                self.config.num_queues()
            ));
        }
        let mut mlq = MultilevelQueue::new(self.config.num_queues());
        for (qi, queue) in state.queues.iter().enumerate() {
            for entry in queue {
                mlq.restore_job(JobId::new(entry.job), qi, entry.seq, entry.max_effective)?;
            }
        }
        mlq.set_next_seq(state.next_seq)?;
        self.mlq = mlq;
        // Demand caches are derived state, not snapshotted: the engine
        // marks every active job changed after a restore, so the first
        // pass refreshes them all (the fresh structure reports every queue
        // dirty, forcing the full re-sort too).
        self.job_cache.clear();
        self.queue_demand = vec![0; self.config.num_queues()];
        self.granted.clear();
        self.demotions = state
            .demotions
            .iter()
            .map(|d| QueueDemotion {
                job: JobId::new(d.job),
                from_queue: d.from_queue,
                to_queue: d.to_queue,
                effective: Service::from_container_secs(d.effective),
            })
            .collect();
        Ok(())
    }

    fn check_consistency(&self) -> Result<(), String> {
        self.mlq.check_consistent()?;
        // The running demand sums must agree with a from-scratch rewalk of
        // the cached entries, and every contributing job must actually sit
        // in the queue its contribution is booked under.
        let mut sums = vec![0u64; self.mlq.num_queues()];
        for (i, sum) in sums.iter_mut().enumerate() {
            for &job in self.mlq.jobs_in(i) {
                let Some(entry) = self.job_cache.get(job.index()) else {
                    continue;
                };
                if entry.contrib_queue == NO_QUEUE {
                    continue;
                }
                if entry.contrib_queue as usize != i {
                    return Err(format!(
                        "{job} sits in queue {i} but its demand is booked under queue {}",
                        entry.contrib_queue
                    ));
                }
                *sum += u64::from(entry.max_useful);
            }
        }
        if sums != self.queue_demand {
            return Err(format!(
                "cached per-queue demand {:?} diverged from recomputed {:?}",
                self.queue_demand, sums
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    use super::*;
    use lasmq_simulator::Service;

    fn view(
        id: u32,
        attained: f64,
        attained_stage: f64,
        progress: f64,
        remaining: u32,
        unstarted: u32,
        held: u32,
    ) -> JobView {
        JobView {
            id: JobId::new(id),
            arrival: SimTime::from_secs(id as u64),
            admitted_at: SimTime::from_secs(id as u64),
            priority: 1,
            attained: Service::from_container_secs(attained),
            attained_stage: Service::from_container_secs(attained_stage),
            stage_index: 0,
            stage_count: 1,
            stage_progress: progress,
            remaining_tasks: remaining,
            unstarted_tasks: unstarted,
            containers_per_task: 1,
            held,
            oracle: None,
        }
    }

    fn config() -> LasMqConfig {
        // Thresholds 10, 100 with 3 queues.
        LasMqConfig::paper_experiments()
            .with_num_queues(3)
            .with_first_threshold(10.0)
    }

    fn admit_all(sched: &mut LasMq, views: &[JobView]) {
        for v in views {
            sched.on_job_admitted(v, SimTime::ZERO);
        }
    }

    #[test]
    fn new_jobs_start_in_the_top_queue() {
        let mut sched = LasMq::new(config());
        let views = vec![view(0, 0.0, 0.0, 0.0, 10, 10, 0)];
        admit_all(&mut sched, &views);
        assert_eq!(sched.queue_of(JobId::new(0)), Some(0));
    }

    #[test]
    fn attained_service_demotes_jobs() {
        let mut sched = LasMq::new(config());
        let views = vec![
            view(0, 5.0, 5.0, 0.0, 10, 10, 0),     // stays in queue 0
            view(1, 50.0, 50.0, 0.0, 10, 10, 0),   // queue 1
            view(2, 500.0, 500.0, 0.0, 10, 10, 0), // queue 2
        ];
        admit_all(&mut sched, &views);
        let ctx = SchedContext::new(SimTime::ZERO, 12, &views);
        let _ = sched.allocate(&ctx);
        assert_eq!(sched.queue_of(JobId::new(0)), Some(0));
        assert_eq!(sched.queue_of(JobId::new(1)), Some(1));
        assert_eq!(sched.queue_of(JobId::new(2)), Some(2));
    }

    #[test]
    fn stage_awareness_demotes_before_threshold_is_consumed() {
        // Attained only 5 (below the 10 threshold), but at 2% of a huge
        // stage… wait, 5/0.25 = 20 > 10: the estimate demotes early.
        let mut sched = LasMq::new(config());
        let views = vec![view(0, 5.0, 5.0, 0.25, 100, 90, 10)];
        admit_all(&mut sched, &views);
        let ctx = SchedContext::new(SimTime::ZERO, 12, &views);
        let _ = sched.allocate(&ctx);
        assert_eq!(sched.queue_of(JobId::new(0)), Some(1));

        // Without stage awareness the same job stays put.
        let mut plain = LasMq::new(config().with_stage_awareness(false));
        admit_all(&mut plain, &views);
        let _ = plain.allocate(&SchedContext::new(SimTime::ZERO, 12, &views));
        assert_eq!(plain.queue_of(JobId::new(0)), Some(0));
    }

    #[test]
    fn top_queue_jobs_outrank_demoted_jobs() {
        let mut sched = LasMq::new(config());
        let views = vec![
            view(0, 500.0, 500.0, 0.0, 100, 100, 0), // big, queue 2
            view(1, 0.0, 0.0, 0.0, 4, 4, 0),         // small newcomer
        ];
        admit_all(&mut sched, &views);
        let ctx = SchedContext::new(SimTime::ZERO, 12, &views);
        let plan = sched.allocate(&ctx);
        // The newcomer's full demand is served; with geometric weights the
        // big job still gets a share (no starvation) plus all leftovers.
        assert_eq!(plan.target_for(JobId::new(1)), Some(4));
        assert_eq!(plan.target_for(JobId::new(0)), Some(8));
        assert_eq!(
            plan.entries()[0].0,
            JobId::new(1),
            "top queue is served first"
        );
    }

    #[test]
    fn weighted_sharing_avoids_starvation() {
        let mut sched = LasMq::new(config());
        // Both queues saturated: demand everywhere.
        let views = vec![
            view(0, 0.0, 0.0, 0.0, 100, 100, 0),         // queue 0
            view(1, 5_000.0, 5_000.0, 0.0, 100, 100, 0), // queue 2
        ];
        admit_all(&mut sched, &views);
        let ctx = SchedContext::new(SimTime::ZERO, 12, &views);
        let plan = sched.allocate(&ctx);
        let low = plan.target_for(JobId::new(1)).unwrap_or(0);
        assert!(low > 0, "demoted job must keep progressing, got {low}");
        assert!(
            plan.target_for(JobId::new(0)).unwrap() > low,
            "top queue weighs more"
        );
    }

    #[test]
    fn strict_priority_starves_lower_queues() {
        let mut sched = LasMq::new(config().with_sharing(QueueSharing::StrictPriority));
        let views = vec![
            view(0, 0.0, 0.0, 0.0, 100, 100, 0),
            view(1, 5_000.0, 5_000.0, 0.0, 100, 100, 0),
        ];
        admit_all(&mut sched, &views);
        let plan = sched.allocate(&SchedContext::new(SimTime::ZERO, 12, &views));
        assert_eq!(plan.target_for(JobId::new(0)), Some(12));
        assert_eq!(plan.target_for(JobId::new(1)), None);
    }

    #[test]
    fn in_queue_ordering_prefers_smaller_remaining_demand() {
        let mut sched = LasMq::new(config());
        let views = vec![
            view(0, 0.0, 0.0, 0.0, 50, 50, 0), // bulky
            view(1, 0.0, 0.0, 0.0, 3, 3, 0),   // nearly done
        ];
        admit_all(&mut sched, &views);
        let plan = sched.allocate(&SchedContext::new(SimTime::ZERO, 10, &views));
        assert_eq!(plan.entries()[0].0, JobId::new(1));
        assert_eq!(plan.target_for(JobId::new(1)), Some(3));

        // FIFO ordering keeps arrival order instead.
        let mut fifo = LasMq::new(config().with_ordering(QueueOrdering::Fifo));
        admit_all(&mut fifo, &views);
        let plan = fifo.allocate(&SchedContext::new(SimTime::ZERO, 10, &views));
        assert_eq!(plan.entries()[0].0, JobId::new(0));
    }

    #[test]
    fn plan_is_work_conserving() {
        let mut sched = LasMq::new(config());
        let views = vec![
            view(0, 0.0, 0.0, 0.0, 2, 2, 0),
            view(1, 50.0, 50.0, 0.0, 100, 100, 0),
        ];
        admit_all(&mut sched, &views);
        let plan = sched.allocate(&SchedContext::new(SimTime::ZERO, 20, &views));
        // Total demand 102 > 20, so all 20 containers must be planned.
        let mut final_targets: HashMap<JobId, u32> = HashMap::new();
        for &(j, t) in plan.entries() {
            final_targets.insert(j, t);
        }
        let total: u32 = final_targets.values().sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn demotions_are_reported_and_drained() {
        let mut sched = LasMq::new(config());
        let views = vec![
            view(0, 50.0, 50.0, 0.0, 10, 10, 0), // belongs in queue 1
            view(1, 2.0, 2.0, 0.0, 10, 10, 0),   // stays in queue 0
        ];
        admit_all(&mut sched, &views);
        let _ = sched.allocate(&SchedContext::new(SimTime::ZERO, 12, &views));
        let demotions = sched.drain_demotions();
        assert_eq!(demotions.len(), 1);
        assert_eq!(demotions[0].job, JobId::new(0));
        assert_eq!(demotions[0].from_queue, 0);
        assert_eq!(demotions[0].to_queue, 1);
        assert!(sched.drain_demotions().is_empty(), "drain clears the list");
        assert_eq!(sched.queue_depths(), Some(vec![1, 1, 0]));
    }

    #[test]
    fn completed_jobs_leave_the_queues() {
        let mut sched = LasMq::new(config());
        let views = vec![view(0, 0.0, 0.0, 0.0, 1, 1, 0)];
        admit_all(&mut sched, &views);
        assert_eq!(sched.queue_lengths().iter().sum::<usize>(), 1);
        sched.on_job_completed(JobId::new(0), SimTime::ZERO);
        assert_eq!(sched.queue_lengths().iter().sum::<usize>(), 0);
    }

    #[test]
    fn single_queue_degenerates_to_ordered_fifo_like_service() {
        // k = 1: no thresholds, everything in one queue — the Fig. 8(a)
        // leftmost point.
        let mut sched = LasMq::new(LasMqConfig::paper_experiments().with_num_queues(1));
        let views = vec![
            view(0, 1_000.0, 1_000.0, 0.0, 10, 10, 0),
            view(1, 0.0, 0.0, 0.0, 10, 10, 0),
        ];
        admit_all(&mut sched, &views);
        let plan = sched.allocate(&SchedContext::new(SimTime::ZERO, 10, &views));
        assert_eq!(plan.total_target(), 10);
    }
}
