//! The LAS_MQ scheduler: Algorithms 1 and 2 of the paper.
//!
//! Each scheduling pass:
//!
//! 1. **Update job orders** (Algorithm 1): compute every job's effective
//!    service — precise past-stage service plus the stage-aware estimate
//!    for the current stage (§III-B) — demote jobs whose service exceeds
//!    their queue's threshold, and sort each queue by the container demand
//!    of the jobs' remaining tasks (§III-C).
//! 2. **Job scheduling** (Algorithm 2): split the cluster across queues by
//!    weighted fair sharing (avoiding starvation of demoted jobs), walk
//!    each queue in order granting `min(rᵢ, jrt)` containers per job, and
//!    finally share any remaining containers with jobs that can still use
//!    them (work conservation).

use std::collections::HashMap;

use lasmq_simulator::{
    AllocationPlan, JobId, JobView, QueueDemotion, SchedContext, Scheduler, Service, SimTime,
};

use lasmq_schedulers::share::{weighted_shares, ShareRequest};

use crate::config::{LasMqConfig, QueueOrdering, QueueSharing};
use crate::estimate::effective_service;
use crate::mlq::MultilevelQueue;

/// One queued job in a serialized LAS_MQ snapshot: its id, FIFO rank and
/// monotonic demotion key. Order within the queue list is the live order.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct QueuedJobState {
    job: u32,
    seq: u64,
    max_effective: f64,
}

/// A pending (undrained) demotion in a serialized LAS_MQ snapshot.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct DemotionState {
    job: u32,
    from_queue: u32,
    to_queue: u32,
    effective: f64,
}

/// The full serialized form of LAS_MQ's mutable state. Thresholds and
/// weights are *not* stored — they are pure functions of the configuration
/// and re-derived on restore, so a snapshot cannot smuggle in a
/// mismatched lineup.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct LasMqState {
    queues: Vec<Vec<QueuedJobState>>,
    next_seq: u64,
    demotions: Vec<DemotionState>,
}

/// The paper's contribution: multilevel-feedback-queue job scheduling
/// without prior size information.
///
/// # Examples
///
/// Running LAS_MQ in the simulator:
///
/// ```
/// use lasmq_core::{LasMq, LasMqConfig};
/// use lasmq_simulator::{
///     ClusterConfig, JobSpec, SimDuration, Simulation, StageKind, StageSpec, TaskSpec,
/// };
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let jobs = (0..4).map(|i| {
///     JobSpec::builder()
///         .arrival(lasmq_simulator::SimTime::from_secs(i))
///         .stage(StageSpec::uniform(
///             StageKind::Map,
///             4,
///             TaskSpec::new(SimDuration::from_secs(5)),
///         ))
///         .build()
/// });
/// let report = Simulation::builder()
///     .cluster(ClusterConfig::single_node(8))
///     .jobs(jobs)
///     .build(LasMq::new(LasMqConfig::paper_experiments()))?
///     .run();
/// assert!(report.all_completed());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LasMq {
    config: LasMqConfig,
    thresholds: Vec<lasmq_simulator::Service>,
    weights: Vec<f64>,
    mlq: MultilevelQueue,
    /// Demotions since the engine last drained them (telemetry).
    demotions: Vec<QueueDemotion>,
}

impl LasMq {
    /// Creates the scheduler from its configuration.
    pub fn new(config: LasMqConfig) -> Self {
        let thresholds = config.thresholds();
        let weights = config.weight_vector();
        let mlq = MultilevelQueue::new(config.num_queues());
        LasMq {
            config,
            thresholds,
            weights,
            mlq,
            demotions: Vec::new(),
        }
    }

    /// With the paper's testbed defaults (k = 10, α₁ = 100, p = 10).
    pub fn with_paper_defaults() -> Self {
        LasMq::new(LasMqConfig::paper_experiments())
    }

    /// The active configuration.
    pub fn config(&self) -> &LasMqConfig {
        &self.config
    }

    /// The queue a job currently sits in (for tests and introspection).
    pub fn queue_of(&self, job: JobId) -> Option<usize> {
        self.mlq.queue_of(job)
    }

    /// Per-queue job counts.
    pub fn queue_lengths(&self) -> Vec<usize> {
        self.mlq.queue_lengths()
    }

    /// Algorithm 1: refresh effective service, demote, and re-sort every
    /// queue.
    fn update_job_orders(&mut self, ordered: &[JobView], views: &HashMap<JobId, &JobView>) {
        // Iterate in admission order (not map order) so defensively
        // inserted jobs receive deterministic sequence numbers.
        for view in ordered {
            // Defensive: jobs normally enter via `on_job_admitted`.
            self.mlq.insert(view.id);
            let effective = effective_service(
                view,
                self.config.stage_awareness(),
                self.config.min_progress_for_estimate(),
            );
            let before = self.mlq.queue_of(view.id);
            let after = self.mlq.observe(view.id, effective, &self.thresholds);
            if let (Some(from), Some(to)) = (before, after) {
                if to != from {
                    self.demotions.push(QueueDemotion {
                        job: view.id,
                        from_queue: from as u32,
                        to_queue: to as u32,
                        effective,
                    });
                }
            }
        }
        for i in 0..self.mlq.num_queues() {
            match self.config.ordering() {
                QueueOrdering::RemainingDemand => {
                    self.mlq.sort_queue_with_seq(i, |job, seq| {
                        let demand = views
                            .get(&job)
                            .map(|v| v.remaining_demand())
                            .unwrap_or(u32::MAX);
                        (demand, seq)
                    });
                }
                QueueOrdering::Fifo => {
                    self.mlq.sort_queue_with_seq(i, |_, seq| seq);
                }
            }
        }
    }

    /// How many containers each queue receives this pass.
    fn queue_allotments(&self, capacity: u32, queue_demands: &[u32]) -> Vec<u32> {
        match self.config.sharing() {
            QueueSharing::Weighted => {
                let requests: Vec<ShareRequest> = queue_demands
                    .iter()
                    .zip(&self.weights)
                    .map(|(&demand, &weight)| ShareRequest::new(demand, weight))
                    .collect();
                weighted_shares(capacity, &requests)
            }
            QueueSharing::StrictPriority => {
                let mut remaining = capacity;
                queue_demands
                    .iter()
                    .map(|&demand| {
                        let r = demand.min(remaining);
                        remaining -= r;
                        r
                    })
                    .collect()
            }
        }
    }
}

impl Scheduler for LasMq {
    fn name(&self) -> &str {
        "LAS_MQ"
    }

    fn on_job_admitted(&mut self, view: &JobView, _now: SimTime) {
        self.mlq.insert(view.id);
    }

    fn on_job_completed(&mut self, job: JobId, _now: SimTime) {
        self.mlq.remove(job);
    }

    fn allocate(&mut self, ctx: &SchedContext<'_>) -> AllocationPlan {
        let views: HashMap<JobId, &JobView> = ctx.jobs().iter().map(|v| (v.id, v)).collect();
        self.update_job_orders(ctx.jobs(), &views);

        let k = self.mlq.num_queues();
        let capacity = ctx.total_containers();

        // Per-queue useful demand, saturating at capacity.
        let queue_demands: Vec<u32> = (0..k)
            .map(|i| {
                let sum: u64 = self
                    .mlq
                    .jobs_in(i)
                    .iter()
                    .filter_map(|j| views.get(j))
                    .map(|v| v.max_useful_allocation() as u64)
                    .sum();
                sum.min(capacity as u64) as u32
            })
            .collect();
        let allotments = self.queue_allotments(capacity, &queue_demands);

        // Algorithm 2: walk queues in priority order, granting
        // min(rᵢ, job demand) to each job in queue order.
        let mut plan = AllocationPlan::new();
        let mut granted: HashMap<JobId, u32> = HashMap::new();
        let mut assigned_total: u32 = 0;
        for (i, &allotment) in allotments.iter().enumerate().take(k) {
            let mut budget = allotment;
            for &job in self.mlq.jobs_in(i) {
                if budget == 0 {
                    break;
                }
                let Some(view) = views.get(&job) else {
                    continue;
                };
                let grant = view.max_useful_allocation().min(budget);
                if grant > 0 {
                    plan.push(job, grant);
                    granted.insert(job, grant);
                    budget -= grant;
                    assigned_total += grant;
                }
            }
        }

        // Work conservation (Algorithm 2, last line): hand every remaining
        // container to jobs that can still use one, highest queue first.
        let mut leftover = capacity - assigned_total.min(capacity);
        if leftover > 0 {
            'outer: for i in 0..k {
                for &job in self.mlq.jobs_in(i) {
                    if leftover == 0 {
                        break 'outer;
                    }
                    let Some(view) = views.get(&job) else {
                        continue;
                    };
                    let already = granted.get(&job).copied().unwrap_or(0);
                    let unmet = view.max_useful_allocation().saturating_sub(already);
                    let extra = unmet.min(leftover);
                    if extra > 0 {
                        // Last entry wins: raise the job's target.
                        plan.push(job, already + extra);
                        granted.insert(job, already + extra);
                        leftover -= extra;
                    }
                }
            }
        }
        plan
    }

    fn queue_depths(&self) -> Option<Vec<u32>> {
        Some(self.mlq.queue_lengths().iter().map(|&n| n as u32).collect())
    }

    fn drain_demotions(&mut self) -> Vec<QueueDemotion> {
        std::mem::take(&mut self.demotions)
    }

    fn snapshot_state(&self) -> Option<String> {
        let queues: Vec<Vec<QueuedJobState>> = (0..self.mlq.num_queues())
            .map(|i| {
                self.mlq
                    .jobs_in(i)
                    .iter()
                    .map(|&j| QueuedJobState {
                        job: u32::from(j),
                        seq: self.mlq.seq_of(j).expect("queued job has a seq"),
                        max_effective: self
                            .mlq
                            .max_effective_of(j)
                            .expect("queued job has a demotion key"),
                    })
                    .collect()
            })
            .collect();
        let state = LasMqState {
            queues,
            next_seq: self.mlq.next_seq(),
            demotions: self
                .demotions
                .iter()
                .map(|d| DemotionState {
                    job: u32::from(d.job),
                    from_queue: d.from_queue,
                    to_queue: d.to_queue,
                    effective: d.effective.as_container_secs(),
                })
                .collect(),
        };
        Some(serde_json::to_string(&state).expect("LAS_MQ state serialization cannot fail"))
    }

    fn restore_state(&mut self, state: &str) -> Result<(), String> {
        let state: LasMqState =
            serde_json::from_str(state).map_err(|e| format!("malformed LAS_MQ state: {e}"))?;
        if state.queues.len() != self.config.num_queues() {
            return Err(format!(
                "snapshot has {} queues but this configuration has {}",
                state.queues.len(),
                self.config.num_queues()
            ));
        }
        let mut mlq = MultilevelQueue::new(self.config.num_queues());
        for (qi, queue) in state.queues.iter().enumerate() {
            for entry in queue {
                mlq.restore_job(JobId::new(entry.job), qi, entry.seq, entry.max_effective)?;
            }
        }
        mlq.set_next_seq(state.next_seq)?;
        self.mlq = mlq;
        self.demotions = state
            .demotions
            .iter()
            .map(|d| QueueDemotion {
                job: JobId::new(d.job),
                from_queue: d.from_queue,
                to_queue: d.to_queue,
                effective: Service::from_container_secs(d.effective),
            })
            .collect();
        Ok(())
    }

    fn check_consistency(&self) -> Result<(), String> {
        self.mlq.check_consistent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasmq_simulator::Service;

    fn view(
        id: u32,
        attained: f64,
        attained_stage: f64,
        progress: f64,
        remaining: u32,
        unstarted: u32,
        held: u32,
    ) -> JobView {
        JobView {
            id: JobId::new(id),
            arrival: SimTime::from_secs(id as u64),
            admitted_at: SimTime::from_secs(id as u64),
            priority: 1,
            attained: Service::from_container_secs(attained),
            attained_stage: Service::from_container_secs(attained_stage),
            stage_index: 0,
            stage_count: 1,
            stage_progress: progress,
            remaining_tasks: remaining,
            unstarted_tasks: unstarted,
            containers_per_task: 1,
            held,
            oracle: None,
        }
    }

    fn config() -> LasMqConfig {
        // Thresholds 10, 100 with 3 queues.
        LasMqConfig::paper_experiments()
            .with_num_queues(3)
            .with_first_threshold(10.0)
    }

    fn admit_all(sched: &mut LasMq, views: &[JobView]) {
        for v in views {
            sched.on_job_admitted(v, SimTime::ZERO);
        }
    }

    #[test]
    fn new_jobs_start_in_the_top_queue() {
        let mut sched = LasMq::new(config());
        let views = vec![view(0, 0.0, 0.0, 0.0, 10, 10, 0)];
        admit_all(&mut sched, &views);
        assert_eq!(sched.queue_of(JobId::new(0)), Some(0));
    }

    #[test]
    fn attained_service_demotes_jobs() {
        let mut sched = LasMq::new(config());
        let views = vec![
            view(0, 5.0, 5.0, 0.0, 10, 10, 0),     // stays in queue 0
            view(1, 50.0, 50.0, 0.0, 10, 10, 0),   // queue 1
            view(2, 500.0, 500.0, 0.0, 10, 10, 0), // queue 2
        ];
        admit_all(&mut sched, &views);
        let ctx = SchedContext::new(SimTime::ZERO, 12, &views);
        let _ = sched.allocate(&ctx);
        assert_eq!(sched.queue_of(JobId::new(0)), Some(0));
        assert_eq!(sched.queue_of(JobId::new(1)), Some(1));
        assert_eq!(sched.queue_of(JobId::new(2)), Some(2));
    }

    #[test]
    fn stage_awareness_demotes_before_threshold_is_consumed() {
        // Attained only 5 (below the 10 threshold), but at 2% of a huge
        // stage… wait, 5/0.25 = 20 > 10: the estimate demotes early.
        let mut sched = LasMq::new(config());
        let views = vec![view(0, 5.0, 5.0, 0.25, 100, 90, 10)];
        admit_all(&mut sched, &views);
        let ctx = SchedContext::new(SimTime::ZERO, 12, &views);
        let _ = sched.allocate(&ctx);
        assert_eq!(sched.queue_of(JobId::new(0)), Some(1));

        // Without stage awareness the same job stays put.
        let mut plain = LasMq::new(config().with_stage_awareness(false));
        admit_all(&mut plain, &views);
        let _ = plain.allocate(&SchedContext::new(SimTime::ZERO, 12, &views));
        assert_eq!(plain.queue_of(JobId::new(0)), Some(0));
    }

    #[test]
    fn top_queue_jobs_outrank_demoted_jobs() {
        let mut sched = LasMq::new(config());
        let views = vec![
            view(0, 500.0, 500.0, 0.0, 100, 100, 0), // big, queue 2
            view(1, 0.0, 0.0, 0.0, 4, 4, 0),         // small newcomer
        ];
        admit_all(&mut sched, &views);
        let ctx = SchedContext::new(SimTime::ZERO, 12, &views);
        let plan = sched.allocate(&ctx);
        // The newcomer's full demand is served; with geometric weights the
        // big job still gets a share (no starvation) plus all leftovers.
        assert_eq!(plan.target_for(JobId::new(1)), Some(4));
        assert_eq!(plan.target_for(JobId::new(0)), Some(8));
        assert_eq!(
            plan.entries()[0].0,
            JobId::new(1),
            "top queue is served first"
        );
    }

    #[test]
    fn weighted_sharing_avoids_starvation() {
        let mut sched = LasMq::new(config());
        // Both queues saturated: demand everywhere.
        let views = vec![
            view(0, 0.0, 0.0, 0.0, 100, 100, 0),         // queue 0
            view(1, 5_000.0, 5_000.0, 0.0, 100, 100, 0), // queue 2
        ];
        admit_all(&mut sched, &views);
        let ctx = SchedContext::new(SimTime::ZERO, 12, &views);
        let plan = sched.allocate(&ctx);
        let low = plan.target_for(JobId::new(1)).unwrap_or(0);
        assert!(low > 0, "demoted job must keep progressing, got {low}");
        assert!(
            plan.target_for(JobId::new(0)).unwrap() > low,
            "top queue weighs more"
        );
    }

    #[test]
    fn strict_priority_starves_lower_queues() {
        let mut sched = LasMq::new(config().with_sharing(QueueSharing::StrictPriority));
        let views = vec![
            view(0, 0.0, 0.0, 0.0, 100, 100, 0),
            view(1, 5_000.0, 5_000.0, 0.0, 100, 100, 0),
        ];
        admit_all(&mut sched, &views);
        let plan = sched.allocate(&SchedContext::new(SimTime::ZERO, 12, &views));
        assert_eq!(plan.target_for(JobId::new(0)), Some(12));
        assert_eq!(plan.target_for(JobId::new(1)), None);
    }

    #[test]
    fn in_queue_ordering_prefers_smaller_remaining_demand() {
        let mut sched = LasMq::new(config());
        let views = vec![
            view(0, 0.0, 0.0, 0.0, 50, 50, 0), // bulky
            view(1, 0.0, 0.0, 0.0, 3, 3, 0),   // nearly done
        ];
        admit_all(&mut sched, &views);
        let plan = sched.allocate(&SchedContext::new(SimTime::ZERO, 10, &views));
        assert_eq!(plan.entries()[0].0, JobId::new(1));
        assert_eq!(plan.target_for(JobId::new(1)), Some(3));

        // FIFO ordering keeps arrival order instead.
        let mut fifo = LasMq::new(config().with_ordering(QueueOrdering::Fifo));
        admit_all(&mut fifo, &views);
        let plan = fifo.allocate(&SchedContext::new(SimTime::ZERO, 10, &views));
        assert_eq!(plan.entries()[0].0, JobId::new(0));
    }

    #[test]
    fn plan_is_work_conserving() {
        let mut sched = LasMq::new(config());
        let views = vec![
            view(0, 0.0, 0.0, 0.0, 2, 2, 0),
            view(1, 50.0, 50.0, 0.0, 100, 100, 0),
        ];
        admit_all(&mut sched, &views);
        let plan = sched.allocate(&SchedContext::new(SimTime::ZERO, 20, &views));
        // Total demand 102 > 20, so all 20 containers must be planned.
        let mut final_targets: HashMap<JobId, u32> = HashMap::new();
        for &(j, t) in plan.entries() {
            final_targets.insert(j, t);
        }
        let total: u32 = final_targets.values().sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn demotions_are_reported_and_drained() {
        let mut sched = LasMq::new(config());
        let views = vec![
            view(0, 50.0, 50.0, 0.0, 10, 10, 0), // belongs in queue 1
            view(1, 2.0, 2.0, 0.0, 10, 10, 0),   // stays in queue 0
        ];
        admit_all(&mut sched, &views);
        let _ = sched.allocate(&SchedContext::new(SimTime::ZERO, 12, &views));
        let demotions = sched.drain_demotions();
        assert_eq!(demotions.len(), 1);
        assert_eq!(demotions[0].job, JobId::new(0));
        assert_eq!(demotions[0].from_queue, 0);
        assert_eq!(demotions[0].to_queue, 1);
        assert!(sched.drain_demotions().is_empty(), "drain clears the list");
        assert_eq!(sched.queue_depths(), Some(vec![1, 1, 0]));
    }

    #[test]
    fn completed_jobs_leave_the_queues() {
        let mut sched = LasMq::new(config());
        let views = vec![view(0, 0.0, 0.0, 0.0, 1, 1, 0)];
        admit_all(&mut sched, &views);
        assert_eq!(sched.queue_lengths().iter().sum::<usize>(), 1);
        sched.on_job_completed(JobId::new(0), SimTime::ZERO);
        assert_eq!(sched.queue_lengths().iter().sum::<usize>(), 0);
    }

    #[test]
    fn single_queue_degenerates_to_ordered_fifo_like_service() {
        // k = 1: no thresholds, everything in one queue — the Fig. 8(a)
        // leftmost point.
        let mut sched = LasMq::new(LasMqConfig::paper_experiments().with_num_queues(1));
        let views = vec![
            view(0, 1_000.0, 1_000.0, 0.0, 10, 10, 0),
            view(1, 0.0, 0.0, 0.0, 10, 10, 0),
        ];
        admit_all(&mut sched, &views);
        let plan = sched.allocate(&SchedContext::new(SimTime::ZERO, 10, &views));
        assert_eq!(plan.total_target(), 10);
    }
}
