//! **LAS_MQ** — job scheduling without prior information, reproduced from
//! *Job Scheduling without Prior Information in Big Data Processing
//! Systems* (Hu, Li, Qin, Goh — ICDCS 2017).
//!
//! LAS_MQ is a multilevel-feedback-queue job scheduler for container
//! clusters (YARN in the paper, [`lasmq_simulator`] here) that mimics
//! shortest-job-first *without knowing job sizes*:
//!
//! * new jobs enter the highest-priority queue and are **demoted** once the
//!   service they have received exceeds their queue's threshold
//!   (`αᵢ₊₁ = p · αᵢ`, exponentially spaced — §III-E), so small jobs finish
//!   in the top queues while large jobs sink and stop blocking them;
//! * **stage awareness** (§III-B) estimates a stage's full cost as
//!   `attained-in-stage / stage-progress`, demoting large jobs *before*
//!   they burn through a threshold — over-estimates only delay the job
//!   itself, so the estimate errs safely;
//! * within a queue, jobs are ordered by the **container demand of their
//!   remaining tasks** (§III-C) — a stable, FIFO-like order that lets more
//!   jobs finish sooner than plain FIFO;
//! * across queues, **weighted fair sharing** keeps demoted jobs
//!   progressing (no starvation), and leftover containers are shared with
//!   any job that can use them (work conservation — Algorithm 2).
//!
//! # Quickstart
//!
//! ```
//! use lasmq_core::{LasMq, LasMqConfig};
//! use lasmq_simulator::{ClusterConfig, Simulation};
//! use lasmq_workload::PumaWorkload;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let jobs = PumaWorkload::new().jobs(10).seed(1).generate();
//! let report = Simulation::builder()
//!     .cluster(ClusterConfig::new(4, 30))
//!     .admission_limit(30)
//!     .jobs(jobs)
//!     .build(LasMq::new(LasMqConfig::paper_experiments()))?
//!     .run();
//! println!("mean response: {:.0}s", report.mean_response_secs().unwrap());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod config;
pub mod estimate;
pub mod mlq;
pub mod scheduler;
pub mod tuning;

pub use config::{LasMqConfig, QueueOrdering, QueueSharing, QueueWeights};
pub use scheduler::LasMq;
pub use tuning::{suggest, TuningSuggestion};
