//! Property-based tests of LAS_MQ's data structures and scheduling plan.

use proptest::prelude::*;

use lasmq_core::estimate::effective_service;
use lasmq_core::mlq::MultilevelQueue;
use lasmq_core::{LasMq, LasMqConfig, QueueOrdering, QueueSharing, QueueWeights};
use lasmq_simulator::{JobId, JobView, SchedContext, Scheduler, Service, SimTime};

fn view_strategy() -> impl Strategy<Value = JobView> {
    (
        0u32..500,
        0.0f64..2e4,
        0.0f64..1.0,
        0.0f64..=1.0,
        0u32..100,
        1u32..=2,
    )
        .prop_map(|(id, attained, stage_frac, progress, unstarted, width)| {
            let attained_stage = attained * stage_frac;
            JobView {
                id: JobId::new(id),
                arrival: SimTime::from_millis(id as u64),
                admitted_at: SimTime::from_millis(id as u64),
                priority: 1 + (id % 5) as u8,
                attained: Service::from_container_secs(attained),
                attained_stage: Service::from_container_secs(attained_stage),
                stage_index: 0,
                stage_count: 2,
                stage_progress: progress,
                remaining_tasks: unstarted + 1,
                unstarted_tasks: unstarted,
                containers_per_task: width,
                held: 0,
                oracle: None,
            }
        })
}

fn dedup_by_id(mut views: Vec<JobView>) -> Vec<JobView> {
    views.sort_by_key(|v| v.id);
    views.dedup_by_key(|v| v.id);
    views
}

fn config_strategy() -> impl Strategy<Value = LasMqConfig> {
    (
        1usize..=10,
        0.5f64..200.0,
        prop_oneof![Just(2.0f64), Just(5.0), Just(10.0)],
        prop::bool::ANY,
        prop::bool::ANY,
        prop::bool::ANY,
        prop_oneof![
            Just(QueueWeights::Equal),
            Just(QueueWeights::Geometric { ratio: 2.0 }),
            Just(QueueWeights::Geometric { ratio: 4.0 }),
        ],
    )
        .prop_map(|(k, alpha, step, sa, demand_order, strict, weights)| {
            LasMqConfig::paper_experiments()
                .with_num_queues(k)
                .with_first_threshold(alpha)
                .with_step(step)
                .with_stage_awareness(sa)
                .with_ordering(if demand_order {
                    QueueOrdering::RemainingDemand
                } else {
                    QueueOrdering::Fifo
                })
                .with_sharing(if strict {
                    QueueSharing::StrictPriority
                } else {
                    QueueSharing::Weighted
                })
                .with_weights(weights)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LAS_MQ plans are sound (no over-allocation, no over-demand) and
    /// work-conserving under saturation, for every configuration corner.
    #[test]
    fn plans_sound_for_all_configs(
        views in prop::collection::vec(view_strategy(), 1..25).prop_map(dedup_by_id),
        capacity in 1u32..150,
        config in config_strategy(),
    ) {
        let mut sched = LasMq::new(config);
        for v in &views {
            sched.on_job_admitted(v, SimTime::ZERO);
        }
        let ctx = SchedContext::new(SimTime::ZERO, capacity, &views);
        let plan = sched.allocate(&ctx);

        let mut totals: std::collections::HashMap<JobId, u32> = std::collections::HashMap::new();
        for &(id, t) in plan.entries() {
            totals.insert(id, t);
        }
        let granted: u64 = totals.values().map(|&t| t as u64).sum();
        prop_assert!(granted <= capacity as u64);
        for (id, t) in &totals {
            let v = views.iter().find(|v| v.id == *id).expect("known job");
            prop_assert!(*t <= v.max_useful_allocation());
        }
        let demand: u64 = views.iter().map(|v| v.max_useful_allocation() as u64).sum();
        prop_assert_eq!(granted, demand.min(capacity as u64), "not work conserving");
    }

    /// Queue placement is consistent: after an allocate pass every job
    /// sits in the queue its (monotone) effective service maps to.
    #[test]
    fn queue_placement_matches_thresholds(
        views in prop::collection::vec(view_strategy(), 1..20).prop_map(dedup_by_id),
        capacity in 1u32..100,
    ) {
        let config = LasMqConfig::paper_experiments().with_num_queues(5).with_first_threshold(10.0);
        let thresholds = config.thresholds();
        let sa = config.stage_awareness();
        let min_prog = config.min_progress_for_estimate();
        let mut sched = LasMq::new(config);
        for v in &views {
            sched.on_job_admitted(v, SimTime::ZERO);
        }
        let ctx = SchedContext::new(SimTime::ZERO, capacity, &views);
        let _ = sched.allocate(&ctx);
        for v in &views {
            let queue = sched.queue_of(v.id).expect("admitted");
            let eff = effective_service(v, sa, min_prog).as_container_secs();
            // The job must sit at or below the first queue whose threshold
            // covers its effective service (monotone demotion can never
            // have taken it past the last queue).
            let expected = thresholds
                .iter()
                .position(|t| eff <= t.as_container_secs() * (1.0 + 1e-6))
                .unwrap_or(thresholds.len());
            prop_assert!(queue >= expected,
                "{}: sits in {queue}, effective {eff} maps to at least {expected}", v.id);
            prop_assert!(queue < 5);
        }
    }

    /// MultilevelQueue is demote-only and conserves membership under an
    /// arbitrary operation sequence.
    #[test]
    fn mlq_demote_only_and_membership(
        ops in prop::collection::vec((0u32..30, 0.0f64..1e5, 0u8..3), 1..200),
    ) {
        let thresholds: Vec<Service> =
            [10.0, 100.0, 1_000.0].iter().map(|&t| Service::from_container_secs(t)).collect();
        let mut mlq = MultilevelQueue::new(4);
        let mut present: std::collections::HashSet<u32> = Default::default();
        let mut last_queue: std::collections::HashMap<u32, usize> = Default::default();
        for (id, service, op) in ops {
            let job = JobId::new(id);
            match op {
                0 => {
                    mlq.insert(job);
                    present.insert(id);
                }
                1 => {
                    mlq.remove(job);
                    present.remove(&id);
                    last_queue.remove(&id);
                }
                _ => {
                    let q = mlq.observe(job, Service::from_container_secs(service), &thresholds);
                    prop_assert_eq!(q.is_some(), present.contains(&id));
                    if let Some(q) = q {
                        if let Some(&prev) = last_queue.get(&id) {
                            prop_assert!(q >= prev, "promotion happened: {prev} -> {q}");
                        }
                        last_queue.insert(id, q);
                    }
                }
            }
            prop_assert_eq!(mlq.len(), present.len());
            prop_assert_eq!(mlq.queue_lengths().iter().sum::<usize>(), present.len());
        }
    }

    /// The `index` map and the `queues` vectors stay mutually consistent
    /// (every queued job indexed at its exact queue and position, nothing
    /// dangling) under arbitrary insert/observe/remove/sort sequences —
    /// the invariant behind O(1) swap-removal and the seq-lookup fallback.
    #[test]
    fn mlq_index_and_queues_stay_consistent(
        ops in prop::collection::vec((0u32..30, 0.0f64..1e5, 0u8..4), 1..200),
    ) {
        let thresholds: Vec<Service> =
            [10.0, 100.0, 1_000.0].iter().map(|&t| Service::from_container_secs(t)).collect();
        let mut mlq = MultilevelQueue::new(4);
        for (id, service, op) in ops {
            let job = JobId::new(id);
            match op {
                0 => mlq.insert(job),
                1 => mlq.remove(job),
                2 => {
                    let _ = mlq.observe(job, Service::from_container_secs(service), &thresholds);
                }
                _ => {
                    let queue = (id as usize) % mlq.num_queues();
                    mlq.sort_queue_with_seq(queue, |_, seq| seq);
                }
            }
            mlq.assert_consistent();
        }
    }

    /// The stage-awareness estimate never ranks a job below its precisely
    /// attained service, and equals it when disabled.
    #[test]
    fn effective_service_bounds(view in view_strategy()) {
        let plain = effective_service(&view, false, 0.05);
        prop_assert!((plain.as_container_secs()
            - view.attained.as_container_secs()).abs() < 1e-9);
        let aware = effective_service(&view, true, 0.05);
        prop_assert!(aware.as_container_secs() + 1e-9 >= view.attained.as_container_secs());
    }

    /// `MultilevelQueue` matches a naive `Vec`-of-`Vec`s model checker op
    /// for op: identical queue contents *in order* (so identical pop
    /// order), identical membership, identical observe() answers, and a
    /// structurally consistent index after every single operation.
    #[test]
    fn mlq_matches_vec_model(
        ops in prop::collection::vec((0u32..25, 0.0f64..1e5, 0u8..4), 1..300),
    ) {
        #[derive(Clone)]
        struct ModelEntry {
            job: JobId,
            seq: u64,
            max_effective: f64,
        }
        // The model is the spec made literal: plain vectors, linear
        // scans, and the same swap-removal the real structure documents.
        struct Model {
            queues: Vec<Vec<ModelEntry>>,
            next_seq: u64,
        }
        impl Model {
            fn find(&self, job: JobId) -> Option<(usize, usize)> {
                self.queues.iter().enumerate().find_map(|(q, jobs)| {
                    jobs.iter().position(|e| e.job == job).map(|p| (q, p))
                })
            }
            fn insert(&mut self, job: JobId) {
                if self.find(job).is_some() {
                    return;
                }
                let seq = self.next_seq;
                self.next_seq += 1;
                self.queues[0].push(ModelEntry { job, seq, max_effective: 0.0 });
            }
            fn remove(&mut self, job: JobId) {
                if let Some((q, p)) = self.find(job) {
                    self.queues[q].swap_remove(p);
                }
            }
            fn observe(
                &mut self,
                job: JobId,
                effective: f64,
                thresholds: &[Service],
            ) -> Option<usize> {
                let (q, p) = self.find(job)?;
                let entry = &mut self.queues[q][p];
                entry.max_effective = entry.max_effective.max(effective);
                let max_effective = entry.max_effective;
                let target = thresholds
                    .iter()
                    .position(|t| max_effective <= t.as_container_secs() * (1.0 + 1e-6))
                    .unwrap_or(thresholds.len());
                if target <= q {
                    return Some(q);
                }
                let entry = self.queues[q].swap_remove(p);
                self.queues[target].push(entry);
                Some(target)
            }
        }

        let thresholds: Vec<Service> =
            [10.0, 100.0, 1_000.0].iter().map(|&t| Service::from_container_secs(t)).collect();
        let mut mlq = MultilevelQueue::new(4);
        let mut model = Model { queues: vec![Vec::new(); 4], next_seq: 0 };
        for (id, service, op) in ops {
            let job = JobId::new(id);
            match op {
                0 => {
                    mlq.insert(job);
                    model.insert(job);
                }
                1 => {
                    mlq.remove(job);
                    model.remove(job);
                }
                2 => {
                    let got = mlq.observe(job, Service::from_container_secs(service), &thresholds);
                    let want = model.observe(job, service, &thresholds);
                    prop_assert_eq!(got, want, "observe disagreed for {}", job);
                }
                _ => {
                    let queue = (id as usize) % mlq.num_queues();
                    mlq.sort_queue_with_seq(queue, |_, seq| seq);
                    model.queues[queue].sort_by_key(|e| e.seq);
                }
            }
            prop_assert_eq!(mlq.len(), model.queues.iter().map(Vec::len).sum::<usize>());
            for q in 0..4 {
                let real: Vec<JobId> = mlq.jobs_in(q).to_vec();
                let want: Vec<JobId> = model.queues[q].iter().map(|e| e.job).collect();
                prop_assert_eq!(real, want, "queue {} contents diverged", q);
                for entry in &model.queues[q] {
                    prop_assert_eq!(mlq.queue_of(entry.job), Some(q));
                    prop_assert_eq!(mlq.seq_of(entry.job), Some(entry.seq));
                    let eff = mlq.max_effective_of(entry.job).expect("queued job has a key");
                    prop_assert!((eff - entry.max_effective).abs() < 1e-12);
                }
            }
            if let Err(detail) = mlq.check_consistent() {
                return Err(TestCaseError::fail(format!("inconsistent structure: {detail}")));
            }
        }
    }

    /// Thresholds grow by exactly the configured step.
    #[test]
    fn thresholds_are_geometric(
        k in 2usize..=12,
        alpha in 0.001f64..1_000.0,
        step in 1.5f64..20.0,
    ) {
        let config = LasMqConfig::paper_experiments()
            .with_num_queues(k)
            .with_first_threshold(alpha)
            .with_step(step);
        let t = config.thresholds();
        prop_assert_eq!(t.len(), k - 1);
        prop_assert!((t[0].as_container_secs() - alpha).abs() < 1e-9 * alpha);
        for pair in t.windows(2) {
            let ratio = pair[1].as_container_secs() / pair[0].as_container_secs();
            prop_assert!((ratio - step).abs() < 1e-6 * step);
        }
    }
}
