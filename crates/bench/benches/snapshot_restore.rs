//! Microbenchmarks of the snapshot/restore subsystem on the paper's
//! testbed shape: a 120-container PUMA run paused halfway through.
//!
//! Four costs matter operationally:
//!
//! * `snapshot_midrun` — running a fresh simulation to the pause point and
//!   capturing full engine state (what `run_with_checkpoints` pays per
//!   checkpoint, plus the run-up);
//! * `serialize_json` — snapshot → checkpoint-file bytes;
//! * `deserialize_json` — checkpoint-file bytes → snapshot (includes the
//!   schema check);
//! * `restore_and_finish` — rebuilding a paused simulation from the
//!   snapshot and running it to completion (what a resumed campaign cell
//!   pays instead of a from-scratch run).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use lasmq_campaign::{SchedulerKind, SimSetup, WorkloadSpec};
use lasmq_simulator::{Scheduler, SimSnapshot, SimTime, Simulation};

const JOBS: usize = 60;
const SEED: u64 = 42;

fn warmed_simulation() -> Simulation<Box<dyn Scheduler>> {
    let workload = WorkloadSpec::Puma {
        jobs: JOBS,
        mean_interval_secs: 50.0,
        seed: SEED,
        geo_bandwidth_mb_per_s: None,
    };
    SimSetup::testbed().build_simulation(workload.generate(), &SchedulerKind::las_mq_simulations())
}

/// The pause point: the median job arrival, when the cluster is warm and
/// a backlog exists.
fn pause_point() -> SimTime {
    let workload = WorkloadSpec::Puma {
        jobs: JOBS,
        mean_interval_secs: 50.0,
        seed: SEED,
        geo_bandwidth_mb_per_s: None,
    };
    let mut arrivals: Vec<SimTime> = workload.generate().iter().map(|j| j.arrival()).collect();
    arrivals.sort();
    arrivals[arrivals.len() / 2]
}

fn bench_snapshot(c: &mut Criterion) {
    let at = pause_point();
    let snapshot = warmed_simulation()
        .snapshot_at(at)
        .expect("pause point lands mid-run");
    let json = snapshot.to_json();

    let mut group = c.benchmark_group("snapshot");
    group.sample_size(10);

    group.bench_function("snapshot_midrun_120c_puma", |b| {
        b.iter(|| {
            let snap = warmed_simulation()
                .snapshot_at(at)
                .expect("pause point lands mid-run");
            black_box(snap)
        });
    });

    group.throughput(Throughput::Bytes(json.len() as u64));
    group.bench_function("serialize_json", |b| {
        b.iter(|| black_box(snapshot.to_json()));
    });
    group.bench_function("deserialize_json", |b| {
        b.iter(|| black_box(SimSnapshot::from_json(black_box(&json)).expect("valid snapshot")));
    });
    group.finish();

    let mut group = c.benchmark_group("restore");
    group.sample_size(10);
    group.bench_function("restore_and_finish_120c_puma", |b| {
        b.iter(|| {
            let sim = Simulation::restore(
                snapshot.clone(),
                SchedulerKind::las_mq_simulations().build(),
            )
            .expect("snapshot restores under the same scheduler");
            black_box(sim.run())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_snapshot);
criterion_main!(benches);
