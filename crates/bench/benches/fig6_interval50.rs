//! Bench for Fig. 6: the testbed workload at a 50 s mean arrival interval
//! (the higher-load twin of Fig. 5, where LAS_MQ's gaps widen).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use lasmq_bench::print_series;
use lasmq_experiments::{fig56, Scale};

fn bench_fig6(c: &mut Criterion) {
    print_series(
        "Fig 6 (interval 50 s)",
        &fig56::run(&Scale::bench(), 50.0).tables(),
    );

    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("full_lineup_interval50", |b| {
        b.iter(|| black_box(fig56::run(&Scale::test(), 50.0)));
    });
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
