//! Bench for Fig. 8: sensitivity to the number of queues and the first
//! threshold.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use lasmq_bench::print_series;
use lasmq_core::LasMqConfig;
use lasmq_experiments::{fig8, Scale, SchedulerKind, SimSetup};
use lasmq_workload::FacebookTrace;

fn bench_fig8(c: &mut Criterion) {
    print_series("Fig 8 (sensitivity)", &fig8::run(&Scale::bench()).tables());

    let jobs = FacebookTrace::new()
        .jobs(Scale::test().facebook_jobs)
        .seed(1)
        .generate();
    let setup = SimSetup::trace_sim();
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    for k in [1usize, 5, 10] {
        let kind = SchedulerKind::LasMq(LasMqConfig::paper_simulations().with_num_queues(k));
        group.bench_function(format!("las_mq_k{k}"), |b| {
            b.iter(|| black_box(setup.run(jobs.clone(), &kind)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
