//! Microbenchmarks of the env rollout path: snapshot → fork → run the
//! episode tail. This is the policy trainer's inner loop, so its cost
//! bounds how many candidates a training round can afford; tracking it
//! alongside the engine benches keeps rollout regressions visible.
//!
//! Three costs matter:
//!
//! * `fork_only` — rebuilding a forked simulation from a warm snapshot
//!   (the per-candidate fixed cost, paid before any simulation);
//! * `fork_and_finish` — fork plus running the tail to completion (one
//!   full candidate evaluation);
//! * `env_episode` — a whole `Env` episode at the same scale through
//!   reset/observe/step (the observation-building overhead on top of the
//!   raw engine, and the cost of a held-out evaluation).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use lasmq_campaign::{SchedulerKind, SimSetup, WorkloadSpec};
use lasmq_env::rollout::episode_return;
use lasmq_env::EnvConfig;
use lasmq_schedulers::{LearnedScheduler, LinearPolicy};
use lasmq_simulator::{SimSnapshot, SimTime, Simulation};

const JOBS: usize = 60;
const SEED: u64 = 42;

fn workload() -> WorkloadSpec {
    WorkloadSpec::Puma {
        jobs: JOBS,
        mean_interval_secs: 50.0,
        seed: SEED,
        geo_bandwidth_mb_per_s: None,
    }
}

/// A warm snapshot at the median arrival under a FIFO donor — the exact
/// starting state `ext_train` forks candidates from.
fn warm_snapshot() -> SimSnapshot {
    let jobs = workload().generate();
    let mut arrivals: Vec<SimTime> = jobs.iter().map(|j| j.arrival()).collect();
    arrivals.sort();
    let at = arrivals[arrivals.len() / 2];
    SimSetup::testbed()
        .build_simulation(jobs, &SchedulerKind::Fifo)
        .snapshot_at(at)
        .expect("pause point lands mid-run")
}

fn bench_rollout(c: &mut Criterion) {
    let snapshot = warm_snapshot();
    let policy = LinearPolicy::las_like();

    let mut group = c.benchmark_group("env_rollout");
    group.sample_size(10);

    group.bench_function("fork_only_120c_puma", |b| {
        b.iter(|| {
            let sim = Simulation::fork(&snapshot, LearnedScheduler::new(policy.clone()))
                .expect("lineup schedulers fork from a non-oracle snapshot");
            black_box(sim)
        });
    });

    group.bench_function("fork_and_finish_120c_puma", |b| {
        b.iter(|| {
            let sim = Simulation::fork(&snapshot, LearnedScheduler::new(policy.clone()))
                .expect("lineup schedulers fork from a non-oracle snapshot");
            black_box(sim.run())
        });
    });

    group.bench_function("env_episode_120c_puma", |b| {
        let mut config = EnvConfig::testbed_puma(JOBS);
        config.workload = workload();
        b.iter(|| black_box(episode_return(&config, &policy, SEED)));
    });

    group.finish();
}

criterion_group!(benches, bench_rollout);
criterion_main!(benches);
