//! Ablation benches for the design choices and extensions DESIGN.md calls
//! out beyond the paper's headline figures:
//!
//! * the **fairness knob** (§VII): queue-weight ratio sweep trading mean
//!   response time against slowdown,
//! * **bad size estimates** (§II): the SJF-est lineup,
//! * the **geo-distributed** shuffle sweep (§VII),
//! * **kill-based preemption** vs graceful rebalancing and **speculative
//!   execution** of stragglers from work-conservation leftovers,
//! * the **SJF/SRTF oracles**: the price of scheduling without size
//!   information.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use lasmq_bench::print_series;
use lasmq_experiments::table::{fmt_num, TextTable};
use lasmq_experiments::{ext_estimation, ext_fairness, ext_geo, Scale, SchedulerKind, SimSetup};
use lasmq_simulator::{PreemptionPolicy, SpeculationConfig};
use lasmq_workload::{FacebookTrace, PumaWorkload};

fn engine_extensions_table(scale: &Scale) -> TextTable {
    let jobs = PumaWorkload::new()
        .jobs(scale.puma_jobs)
        .mean_interval_secs(50.0)
        .seed(scale.seed)
        .generate();
    let mut t = TextTable::new(
        "Extension: engine policies under LAS_MQ (PUMA workload)",
        vec![
            "policy".into(),
            "mean response (s)".into(),
            "kills".into(),
            "spec copies".into(),
        ],
    );
    let kind = SchedulerKind::las_mq_experiments();
    let variants: Vec<(&str, SimSetup)> = vec![
        ("graceful (paper)", SimSetup::testbed()),
        (
            "kill preemption",
            SimSetup::testbed().preemption(PreemptionPolicy::Kill),
        ),
        (
            "speculation on",
            SimSetup::testbed().speculation(SpeculationConfig::enabled(3, 1.5)),
        ),
    ];
    for (label, setup) in variants {
        let report = setup.run(jobs.clone(), &kind);
        t.row(vec![
            label.into(),
            fmt_num(report.mean_response_secs().unwrap_or(f64::NAN)),
            report.stats().tasks_killed.to_string(),
            report.stats().speculative_launched.to_string(),
        ]);
    }
    t
}

fn bench_extensions(c: &mut Criterion) {
    let scale = Scale::bench();
    let mut tables = Vec::new();
    tables.extend(ext_estimation::run(&scale).tables());
    tables.extend(ext_fairness::run(&scale).tables());
    tables.extend(ext_geo::run(&scale).tables());
    tables.push(engine_extensions_table(&scale));
    print_series("Extensions (ablations beyond the paper)", &tables);

    let jobs = FacebookTrace::new()
        .jobs(Scale::test().facebook_jobs)
        .seed(1)
        .generate();
    let setup = SimSetup::trace_sim();
    let mut group = c.benchmark_group("extensions");
    group.sample_size(10);
    for kind in [SchedulerKind::Sjf, SchedulerKind::Srtf] {
        group.bench_function(format!("oracle_{kind}"), |b| {
            b.iter(|| black_box(setup.run(jobs.clone(), &kind)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_extensions);
criterion_main!(benches);
