//! Bench for Fig. 5: the testbed workload at an 80 s mean arrival
//! interval (response CDF, per-bin means, slowdown CDF).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use lasmq_bench::print_series;
use lasmq_experiments::{fig56, Scale, SchedulerKind, SimSetup};
use lasmq_workload::PumaWorkload;

fn bench_fig5(c: &mut Criterion) {
    print_series(
        "Fig 5 (interval 80 s)",
        &fig56::run(&Scale::bench(), 80.0).tables(),
    );

    let jobs = PumaWorkload::new()
        .jobs(50)
        .mean_interval_secs(80.0)
        .seed(1)
        .generate();
    let setup = SimSetup::testbed();
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    for kind in SchedulerKind::paper_lineup_experiments() {
        group.bench_function(format!("puma50_{kind}"), |b| {
            b.iter(|| black_box(setup.run(jobs.clone(), &kind)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
