//! Bench for Table I: regenerates the workload-description table and
//! measures PUMA workload generation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use lasmq_bench::print_series;
use lasmq_experiments::{table1, Scale};
use lasmq_workload::PumaWorkload;

fn bench_table1(c: &mut Criterion) {
    print_series("Table I", &table1::run(&Scale::bench()).tables());

    let mut group = c.benchmark_group("table1");
    group.sample_size(20);
    group.bench_function("build_table1", |b| {
        b.iter(|| black_box(table1::run(&Scale::test())));
    });
    group.bench_function("generate_puma_100_jobs", |b| {
        b.iter(|| black_box(PumaWorkload::new().jobs(100).seed(1).generate()));
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
