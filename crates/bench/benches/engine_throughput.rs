//! Microbenchmarks of the simulator substrate itself: event throughput,
//! the weighted-share primitive, the event queue, and the multilevel
//! queue's membership churn.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use lasmq_campaign::{SchedulerKind, SimSetup};
use lasmq_core::mlq::MultilevelQueue;
use lasmq_core::LasMq;
use lasmq_schedulers::share::{weighted_shares, ShareRequest};
use lasmq_schedulers::Fifo;
use lasmq_simulator::event::{Event, EventQueue};
use lasmq_simulator::{
    ClusterConfig, JobId, JobSpec, Service, SimDuration, SimTime, Simulation, StageKind, StageSpec,
    TaskSpec,
};
use lasmq_workload::FacebookTrace;

fn synthetic_jobs(n: usize) -> Vec<JobSpec> {
    (0..n)
        .map(|i| {
            JobSpec::builder()
                .arrival(SimTime::from_secs(i as u64))
                .stage(StageSpec::uniform(
                    StageKind::Map,
                    20,
                    TaskSpec::new(SimDuration::from_secs(5 + (i % 7) as u64)),
                ))
                .stage(StageSpec::uniform(
                    StageKind::Reduce,
                    5,
                    TaskSpec::new(SimDuration::from_secs(10)).with_containers(2),
                ))
                .build()
        })
        .collect()
}

fn bench_engine(c: &mut Criterion) {
    let jobs = synthetic_jobs(500);
    let task_events: u64 = jobs.iter().map(|j| j.total_tasks() as u64).sum();

    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.throughput(Throughput::Elements(task_events));
    group.bench_function("fifo_500_jobs_12500_tasks", |b| {
        b.iter(|| {
            let report = Simulation::builder()
                .cluster(ClusterConfig::new(4, 30))
                .jobs(jobs.clone())
                .build(Fifo::new())
                .expect("valid setup")
                .run();
            black_box(report)
        });
    });
    // The paper scheduler end-to-end: exercises the multilevel queue's
    // insert/observe/remove churn (position-tracked swap removal) plus
    // per-pass ordering, on top of the same engine substrate.
    group.bench_function("las_mq_500_jobs_12500_tasks", |b| {
        b.iter(|| {
            let report = Simulation::builder()
                .cluster(ClusterConfig::new(4, 30))
                .jobs(jobs.clone())
                .build(LasMq::with_paper_defaults())
                .expect("valid setup")
                .run();
            black_box(report)
        });
    });
    group.finish();

    // Facebook-scale: the paper's §V-C trace environment (heavy-tailed
    // job widths, 100-container pool) at a 3,000-job prefix — large
    // enough that scheduling-pass cost dominates, small enough for
    // criterion's iteration counts. The full 24,443-job trace is the
    // perf-smoke binary's job; this group tracks the same workload shape
    // and pits the incremental engine against the full-rebuild reference.
    let trace = FacebookTrace::new().jobs(3_000).seed(0).generate();
    let kind = SchedulerKind::las_mq_simulations();
    let events = SimSetup::trace_sim()
        .run(trace.clone(), &kind)
        .stats()
        .events_processed;

    let mut group = c.benchmark_group("facebook_scale");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events));
    group.bench_function("las_mq_3000_jobs_incremental", |b| {
        b.iter(|| {
            let report = SimSetup::trace_sim().run(trace.clone(), &kind);
            black_box(report)
        });
    });
    group.bench_function("las_mq_3000_jobs_full_rebuild", |b| {
        b.iter(|| {
            let report = SimSetup::trace_sim()
                .full_rebuild_passes(true)
                .run(trace.clone(), &kind);
            black_box(report)
        });
    });
    group.finish();

    let mut group = c.benchmark_group("primitives");
    let requests: Vec<ShareRequest> = (0..1_000)
        .map(|i| ShareRequest::new(1 + (i % 50), 1.0 + (i % 5) as f64))
        .collect();
    group.throughput(Throughput::Elements(requests.len() as u64));
    group.bench_function("weighted_shares_1000_parties", |b| {
        b.iter(|| black_box(weighted_shares(black_box(120), &requests)));
    });

    // Membership churn on the multilevel queue: insert a large population,
    // demote jobs via observations, then drain by removal. Removal and
    // demotion are O(1) swap-outs (each entry tracks its queue position),
    // so this stays flat as the population grows instead of scaling with
    // queue length.
    let thresholds: Vec<Service> = [10.0, 100.0, 1_000.0, 10_000.0]
        .iter()
        .map(|&s| Service::from_container_secs(s))
        .collect();
    group.throughput(Throughput::Elements(8_000));
    group.bench_function("mlq_churn_2000_jobs_8k_ops", |b| {
        b.iter(|| {
            let mut mlq = MultilevelQueue::new(thresholds.len() + 1);
            for i in 0..2_000u32 {
                mlq.insert(JobId::new(i));
            }
            for round in 0..2u64 {
                for i in 0..2_000u32 {
                    let service = ((u64::from(i) * 7919 + round * 13) % 20_000) as f64;
                    mlq.observe(
                        JobId::new(i),
                        Service::from_container_secs(service),
                        &thresholds,
                    );
                }
            }
            for i in 0..2_000u32 {
                mlq.remove(JobId::new(i));
            }
            black_box(mlq)
        });
    });

    group.throughput(Throughput::Elements(10_000));
    group.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.push(SimTime::from_millis((i * 7919) % 100_000), Event::Tick);
            }
            while let Some(e) = q.pop() {
                black_box(e);
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
