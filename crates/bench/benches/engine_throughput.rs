//! Microbenchmarks of the simulator substrate itself: event throughput,
//! the weighted-share primitive, and the event queue.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use lasmq_schedulers::share::{weighted_shares, ShareRequest};
use lasmq_schedulers::Fifo;
use lasmq_simulator::event::{Event, EventQueue};
use lasmq_simulator::{
    ClusterConfig, JobSpec, SimDuration, SimTime, Simulation, StageKind, StageSpec, TaskSpec,
};

fn synthetic_jobs(n: usize) -> Vec<JobSpec> {
    (0..n)
        .map(|i| {
            JobSpec::builder()
                .arrival(SimTime::from_secs(i as u64))
                .stage(StageSpec::uniform(
                    StageKind::Map,
                    20,
                    TaskSpec::new(SimDuration::from_secs(5 + (i % 7) as u64)),
                ))
                .stage(StageSpec::uniform(
                    StageKind::Reduce,
                    5,
                    TaskSpec::new(SimDuration::from_secs(10)).with_containers(2),
                ))
                .build()
        })
        .collect()
}

fn bench_engine(c: &mut Criterion) {
    let jobs = synthetic_jobs(500);
    let task_events: u64 = jobs.iter().map(|j| j.total_tasks() as u64).sum();

    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.throughput(Throughput::Elements(task_events));
    group.bench_function("fifo_500_jobs_12500_tasks", |b| {
        b.iter(|| {
            let report = Simulation::builder()
                .cluster(ClusterConfig::new(4, 30))
                .jobs(jobs.clone())
                .build(Fifo::new())
                .expect("valid setup")
                .run();
            black_box(report)
        });
    });
    group.finish();

    let mut group = c.benchmark_group("primitives");
    let requests: Vec<ShareRequest> = (0..1_000)
        .map(|i| ShareRequest::new(1 + (i % 50), 1.0 + (i % 5) as f64))
        .collect();
    group.throughput(Throughput::Elements(requests.len() as u64));
    group.bench_function("weighted_shares_1000_parties", |b| {
        b.iter(|| black_box(weighted_shares(black_box(120), &requests)));
    });

    group.throughput(Throughput::Elements(10_000));
    group.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.push(SimTime::from_millis((i * 7919) % 100_000), Event::Tick);
            }
            while let Some(e) = q.pop() {
                black_box(e);
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
