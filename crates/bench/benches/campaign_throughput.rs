//! Bench for the campaign executor: parallel speedup and warm-cache
//! replay on the Fig. 3 ablation grid.
//!
//! Three configurations of the *same* campaign (which the determinism
//! regression test proves produce byte-identical results):
//!
//! * `serial_no_cache` — 1 worker, every cell simulated,
//! * `parallel_no_cache` — all cores, every cell simulated,
//! * `parallel_warm_cache` — all cores, every cell replayed from the
//!   content-addressed result cache.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use lasmq_campaign::ExecOptions;
use lasmq_experiments::{fig3, Scale};

fn bench_campaign(c: &mut Criterion) {
    let scale = Scale::test();
    let cache_dir = std::env::temp_dir().join(format!("lasmq-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);

    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    group.bench_function("serial_no_cache", |b| {
        b.iter(|| {
            black_box(fig3::run_with(
                &scale,
                &ExecOptions::with_threads(1).no_cache(),
            ))
        });
    });
    group.bench_function("parallel_no_cache", |b| {
        b.iter(|| black_box(fig3::run_with(&scale, &ExecOptions::default().no_cache())));
    });
    // Populate once, then measure pure cache replay.
    fig3::run_with(&scale, &ExecOptions::default().cache_dir(&cache_dir));
    group.bench_function("parallel_warm_cache", |b| {
        b.iter(|| {
            black_box(fig3::run_with(
                &scale,
                &ExecOptions::default().cache_dir(&cache_dir),
            ))
        });
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&cache_dir);
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
