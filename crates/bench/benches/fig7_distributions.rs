//! Bench for Fig. 7: heavy-tailed vs uniform size distributions.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use lasmq_bench::print_series;
use lasmq_experiments::{fig7, Scale, SchedulerKind, SimSetup};
use lasmq_workload::FacebookTrace;

fn bench_fig7(c: &mut Criterion) {
    print_series(
        "Fig 7 (distributions)",
        &fig7::run(&Scale::bench()).tables(),
    );

    let jobs = FacebookTrace::new()
        .jobs(Scale::test().facebook_jobs)
        .seed(1)
        .generate();
    let setup = SimSetup::trace_sim();
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    for kind in SchedulerKind::paper_lineup_simulations() {
        group.bench_function(format!("trace_{kind}"), |b| {
            b.iter(|| black_box(setup.run(jobs.clone(), &kind)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
