//! Bench for Fig. 3: the stage-awareness × in-queue-ordering ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use lasmq_bench::print_series;
use lasmq_experiments::{fig3, Scale};

fn bench_fig3(c: &mut Criterion) {
    print_series("Fig 3 (ablation)", &fig3::run(&Scale::bench()).tables());

    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.bench_function("ablation_all_cases", |b| {
        b.iter(|| black_box(fig3::run(&Scale::test())));
    });
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
