//! Shared helpers for the criterion benches.
//!
//! Every bench regenerates its table/figure's series once at reduced
//! ([`Scale::bench`]) scale — so `cargo bench` reproduces the paper's rows
//! — and then measures the wall-clock cost of the underlying simulation
//! runs at [`Scale::test`] scale.
//!
//! [`Scale::bench`]: lasmq_experiments::Scale::bench
//! [`Scale::test`]: lasmq_experiments::Scale::test

use std::sync::Once;

use lasmq_experiments::table::TextTable;

static HEADER: Once = Once::new();

/// Prints a figure's tables exactly once per bench process, prefixed with
/// a reproduction banner.
pub fn print_series(figure: &str, tables: &[TextTable]) {
    HEADER.call_once(|| {
        println!("\n--- LAS_MQ paper series (reduced bench scale; run `repro` for full scale) ---");
    });
    println!("\n### {figure}");
    for t in tables {
        println!("{t}");
    }
}
