//! Perf smoke check: engine throughput on the Facebook-scale trace.
//!
//! Runs the paper's §V-C trace-simulation environment (synthetic
//! Facebook 2010 trace under LAS_MQ on a flat 100-container pool) a few
//! times, reports the best events/sec, and optionally compares against a
//! committed baseline so CI can catch throughput regressions:
//!
//! ```text
//! perf-smoke                      # measure and print
//! perf-smoke --emit BENCH_5.json  # record a new baseline
//! perf-smoke --check BENCH_5.json # fail (exit 1) on > 30% regression
//! ```
//!
//! The baseline stores the *event count* (deterministic) and the
//! events/sec observed on the recording machine (hardware-dependent —
//! hence the wide 30% gate, which catches algorithmic regressions, not
//! machine noise). `--check` first re-verifies the event count: a changed
//! count means the engine did different work, which is a correctness
//! signal, not a perf signal, and fails fast.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use lasmq_campaign::{SchedulerKind, SimSetup};
use lasmq_workload::{FacebookTrace, ScaleTrace};

/// Fractional throughput drop vs the baseline that fails `--check`.
const REGRESSION_GATE: f64 = 0.30;

/// Default measurement iterations; the best run is kept (noise shrinks
/// the others, never inflates the best).
const DEFAULT_ITERATIONS: usize = 3;

const USAGE: &str = "\
perf-smoke: Facebook-scale engine throughput smoke check

USAGE:
    perf-smoke [--trace NAME] [--jobs N] [--seed S] [--emit FILE | --check FILE]

OPTIONS:
    --trace NAME    workload: 'facebook' (default; the paper's trace on a
                    flat 100-container pool) or 'scale' (the million-job
                    heavy-tailed trace on a 1,000-node x 8-container
                    cluster)
    --jobs N        trace length in jobs (default: 24443 for facebook,
                    1000000 for scale)
    --seed S        trace generator seed (default 0)
    --full-rebuild  disable incremental passes (the legacy engine path),
                    for A/B comparison against the default incremental mode
    --heap-queue    run the event queue on the legacy binary-heap backend,
                    for A/B byte-identity against the calendar queue
    --iters N       measurement iterations, best kept (default 3; CI uses 1
                    for the long scale-trace gate)
    --report FILE   write the final iteration's full simulation report as
                    JSON (the byte-identity artifact for A/B diffs)
    --emit FILE     write the measurement as a JSON baseline
    --check FILE    compare against FILE; exit 1 on > 30% regression
    --help          print this help
";

#[derive(Clone, Copy, PartialEq)]
enum TraceKind {
    Facebook,
    Scale,
}

impl TraceKind {
    fn bench_name(self) -> &'static str {
        match self {
            TraceKind::Facebook => "facebook_trace_las_mq",
            TraceKind::Scale => "scale_trace_las_mq",
        }
    }

    fn default_jobs(self) -> usize {
        match self {
            TraceKind::Facebook => lasmq_workload::facebook::FACEBOOK_JOB_COUNT,
            TraceKind::Scale => lasmq_workload::scale::SCALE_JOB_COUNT,
        }
    }
}

struct Args {
    trace: TraceKind,
    jobs: Option<usize>,
    seed: u64,
    full_rebuild: bool,
    heap_queue: bool,
    iters: usize,
    report: Option<String>,
    emit: Option<String>,
    check: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        trace: TraceKind::Facebook,
        jobs: None,
        seed: 0,
        full_rebuild: false,
        heap_queue: false,
        iters: DEFAULT_ITERATIONS,
        report: None,
        emit: None,
        check: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--trace" => {
                args.trace = match value("--trace")?.as_str() {
                    "facebook" => TraceKind::Facebook,
                    "scale" => TraceKind::Scale,
                    other => return Err(format!("--trace: unknown trace '{other}'")),
                }
            }
            "--jobs" => {
                args.jobs = Some(
                    value("--jobs")?
                        .parse()
                        .map_err(|e| format!("--jobs: {e}"))?,
                )
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--full-rebuild" => args.full_rebuild = true,
            "--heap-queue" => args.heap_queue = true,
            "--iters" => {
                args.iters = value("--iters")?
                    .parse()
                    .map_err(|e| format!("--iters: {e}"))?;
                if args.iters == 0 {
                    return Err("--iters must be at least 1".into());
                }
            }
            "--report" => args.report = Some(value("--report")?),
            "--emit" => args.emit = Some(value("--emit")?),
            "--check" => args.check = Some(value("--check")?),
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if args.emit.is_some() && args.check.is_some() {
        return Err("--emit and --check are mutually exclusive".into());
    }
    Ok(args)
}

struct Measurement {
    trace: TraceKind,
    jobs: usize,
    seed: u64,
    events: u64,
    best_secs: f64,
}

impl Measurement {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.best_secs
    }

    fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"bench\": \"{}\",", self.trace.bench_name());
        let _ = writeln!(s, "  \"jobs\": {},", self.jobs);
        let _ = writeln!(s, "  \"seed\": {},", self.seed);
        let _ = writeln!(s, "  \"events\": {},", self.events);
        let _ = writeln!(s, "  \"wall_secs\": {:.3},", self.best_secs);
        let _ = writeln!(s, "  \"events_per_sec\": {:.0}", self.events_per_sec());
        let _ = writeln!(s, "}}");
        s
    }
}

fn measure(args: &Args, jobs: usize) -> (Measurement, lasmq_simulator::SimulationReport) {
    let (trace, setup) = match args.trace {
        TraceKind::Facebook => (
            FacebookTrace::new().jobs(jobs).seed(args.seed).generate(),
            SimSetup::trace_sim(),
        ),
        TraceKind::Scale => {
            let gen = ScaleTrace::new().jobs(jobs).seed(args.seed);
            let cluster = gen.cluster();
            (
                gen.generate(),
                SimSetup::scale_sim(cluster.nodes(), cluster.containers_per_node()),
            )
        }
    };
    let setup = setup
        .full_rebuild_passes(args.full_rebuild)
        .heap_event_queue(args.heap_queue);
    let kind = SchedulerKind::las_mq_simulations();

    let iters = args.iters;
    let mut best_secs = f64::INFINITY;
    let mut events = 0;
    let mut last_report = None;
    for i in 0..iters {
        let trace = trace.clone();
        let start = Instant::now();
        let report = setup.run(trace, &kind);
        let secs = start.elapsed().as_secs_f64();
        assert!(report.all_completed(), "trace run left jobs unfinished");
        events = report.stats().events_processed;
        best_secs = best_secs.min(secs);
        eprintln!(
            "  iter {}/{iters}: {secs:.2}s, {:.0} events/s ({} passes)",
            i + 1,
            events as f64 / secs,
            report.stats().scheduling_passes
        );
        last_report = Some(report);
    }
    let measurement = Measurement {
        trace: args.trace,
        jobs,
        seed: args.seed,
        events,
        best_secs,
    };
    (measurement, last_report.expect("iters >= 1"))
}

fn baseline_field(json: &str, key: &str) -> Option<f64> {
    // The baseline is machine-written flat JSON; a line scan keeps this
    // binary free of a serde dependency.
    let needle = format!("\"{key}\":");
    json.lines().find_map(|l| {
        l.trim()
            .strip_prefix(&needle)?
            .trim()
            .trim_end_matches(',')
            .parse()
            .ok()
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let jobs = args.jobs.unwrap_or_else(|| args.trace.default_jobs());
    eprintln!(
        "perf-smoke: {} {} jobs under LAS_MQ (seed {}{})",
        jobs,
        args.trace.bench_name(),
        args.seed,
        if args.full_rebuild {
            ", full-rebuild passes"
        } else {
            ""
        }
    );
    if args.heap_queue {
        eprintln!("perf-smoke: legacy binary-heap event-queue backend");
    }
    let (m, report) = measure(&args, jobs);
    println!(
        "{}: {} events in {:.2}s = {:.0} events/s",
        args.trace.bench_name(),
        m.events,
        m.best_secs,
        m.events_per_sec()
    );

    if let Some(path) = &args.report {
        // Every run of the same workload is deterministic, so the final
        // iteration's report is THE report; two invocations differing only
        // in backend flags must produce byte-identical files.
        let json = serde_json::to_string(&report).expect("report serialization cannot fail");
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("error: writing report {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("report written to {path}");
    }

    if let Some(path) = &args.emit {
        if let Err(e) = std::fs::write(path, m.to_json()) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("baseline written to {path}");
    }

    if let Some(path) = &args.check {
        let json = match std::fs::read_to_string(path) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("error: reading baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let (Some(base_jobs), Some(base_events), Some(base_rate)) = (
            baseline_field(&json, "jobs"),
            baseline_field(&json, "events"),
            baseline_field(&json, "events_per_sec"),
        ) else {
            eprintln!("error: baseline {path} is missing jobs/events/events_per_sec");
            return ExitCode::FAILURE;
        };
        if let Some(name) = json
            .lines()
            .find_map(|l| l.trim().strip_prefix("\"bench\":"))
        {
            let name = name.trim().trim_end_matches(',').trim_matches('"');
            if name != m.trace.bench_name() {
                eprintln!(
                    "error: baseline {path} records bench '{name}' but this run measured \
                     '{}' (pass --trace)",
                    m.trace.bench_name()
                );
                return ExitCode::FAILURE;
            }
        }
        if base_jobs as usize != m.jobs {
            eprintln!(
                "error: baseline was recorded at {} jobs but this run used {} (pass --jobs)",
                base_jobs as usize, m.jobs
            );
            return ExitCode::FAILURE;
        }
        if base_events as u64 != m.events {
            eprintln!(
                "error: event count changed: baseline {} vs measured {} — the engine \
                 did different work; re-record the baseline only if that is intended",
                base_events as u64, m.events
            );
            return ExitCode::FAILURE;
        }
        let ratio = m.events_per_sec() / base_rate;
        println!(
            "baseline {base_rate:.0} events/s, measured {:.0} events/s ({:+.1}%)",
            m.events_per_sec(),
            (ratio - 1.0) * 100.0
        );
        if ratio < 1.0 - REGRESSION_GATE {
            eprintln!(
                "error: throughput regressed {:.1}% (> {:.0}% gate)",
                (1.0 - ratio) * 100.0,
                REGRESSION_GATE * 100.0
            );
            return ExitCode::FAILURE;
        }
        println!("within the {:.0}% regression gate", REGRESSION_GATE * 100.0);
    }

    ExitCode::SUCCESS
}
