//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! Provides the subset of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait with range / tuple / collection /
//! option / boolean / union strategies, [`Just`], `prop_map`, and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_oneof!`] macros. Two deliberate simplifications versus
//! upstream:
//!
//! * **No shrinking.** A failing case panics with the failing assertion;
//!   because case generation is fully deterministic (the RNG is seeded
//!   from the test function's name), re-running the test reproduces the
//!   same inputs.
//! * **Deterministic runs.** Upstream seeds from the OS; here every run
//!   of a given test explores the same cases, which doubles as flake
//!   protection for CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A failed property-test case, produced by the [`prop_assert!`] family
/// and propagated with `?` through helper functions that return
/// `Result<(), TestCaseError>` (mirroring upstream's
/// `test_runner::TestCaseError`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure carrying `reason`.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError {
            message: reason.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Configuration for a [`proptest!`] block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of cases each test function runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic generator used to sample strategies
/// (xoshiro256\*\*, seeded from the test name).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A generator whose stream is a pure function of `name`.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, then SplitMix64 to fill the state.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut state = h;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next().max(1)],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy producing `f` applied to this strategy's values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy producing one constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64) - (lo as u64) + 1;
                if span == 0 {
                    // Full-width u64 range; any draw is in bounds.
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span) as $t
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        // Step just past 1.0 so the upper bound is reachable.
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + u * (hi - lo)
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// A uniform choice between boxed alternative strategies
/// (what [`prop_oneof!`] builds).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { options }
    }
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} options)", self.options.len())
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

/// The `prop::` module tree mirroring upstream's prelude paths.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// Anything usable as a vector-length specification.
        pub trait IntoSizeRange {
            /// Lower and upper bound (inclusive) on the length.
            fn bounds(&self) -> (usize, usize);
        }

        impl IntoSizeRange for usize {
            fn bounds(&self) -> (usize, usize) {
                (*self, *self)
            }
        }

        impl IntoSizeRange for Range<usize> {
            fn bounds(&self) -> (usize, usize) {
                assert!(self.start < self.end, "empty size range");
                (self.start, self.end - 1)
            }
        }

        impl IntoSizeRange for RangeInclusive<usize> {
            fn bounds(&self) -> (usize, usize) {
                (*self.start(), *self.end())
            }
        }

        /// A strategy for vectors whose elements come from `element` and
        /// whose length falls in `size`.
        pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
            let (min, max) = size.bounds();
            VecStrategy { element, min, max }
        }

        /// The result of [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            min: usize,
            max: usize,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = if self.min == self.max {
                    self.min
                } else {
                    self.min + rng.below((self.max - self.min + 1) as u64) as usize
                };
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};

        /// A fair coin.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// The fair-coin strategy (upstream's `prop::bool::ANY`).
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn sample(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use crate::{Strategy, TestRng};

        /// `None` about a quarter of the time, `Some(inner)` otherwise
        /// (upstream defaults to 90 % `Some`; any fixed mix is fine for
        /// the tests here).
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// The result of [`of`].
        #[derive(Debug, Clone)]
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.inner.sample(rng))
                }
            }
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines property-test functions.
///
/// Each function's arguments are sampled from strategies `cases` times
/// (see [`ProptestConfig`]); the body runs once per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg[$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg[$crate::ProptestConfig::default()] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg[$cfg:expr]) => {};
    (@cfg[$cfg:expr]
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                let __result: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(__e) = __result {
                    panic!(
                        "property failed at case #{} of {}: {}",
                        __case, __config.cases, __e
                    );
                }
            }
        }
        $crate::__proptest_impl!{ @cfg[$cfg] $($rest)* }
    };
}

/// Asserts a condition inside a property test; on failure returns
/// `Err(TestCaseError)` from the enclosing function (the [`proptest!`]
/// body, or any helper returning `Result<(), TestCaseError>`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::TestCaseError::fail(format!($($fmt)+)).into(),
            );
        }
    };
}

/// Asserts equality inside a property test (error-returning, like
/// [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Asserts inequality inside a property test (error-returning, like
/// [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left), stringify!($right), __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, $($fmt)+);
    }};
}

/// A uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..10, y in 0.5f64..=2.0, b in prop::bool::ANY) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..=2.0).contains(&y));
            // `b` exercises the bool strategy's sampling path; both
            // branches are reached across the 64 cases.
            let parity = if b { x % 2 } else { (x + 1) % 2 };
            prop_assert!(parity < 2);
        }

        #[test]
        fn vec_lengths_in_range(v in prop::collection::vec(0u8..=255, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
        }

        #[test]
        fn exact_vec_length(v in prop::collection::vec(0u64..5, 7usize)) {
            prop_assert_eq!(v.len(), 7);
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![Just(1u32), Just(5u32)].prop_map(|v| v * 2)) {
            prop_assert!(x == 2 || x == 10);
        }

        #[test]
        fn option_of_produces_both(o in prop::option::of(1u8..3)) {
            if let Some(v) = o {
                prop_assert!(v == 1 || v == 2);
            }
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        use crate::{Strategy, TestRng};
        let strat = 0u64..1_000_000;
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        let xs: Vec<u64> = (0..16).map(|_| strat.sample(&mut a)).collect();
        let ys: Vec<u64> = (0..16).map(|_| strat.sample(&mut b)).collect();
        let zs: Vec<u64> = (0..16).map(|_| strat.sample(&mut c)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }
}
