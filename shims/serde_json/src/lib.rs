//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json).
//!
//! Works with the `serde` shim's [`Value`] tree: [`to_string`] renders a
//! tree to compact JSON, [`from_str`] parses JSON back into any
//! [`Deserialize`] type. Floats are written with Rust's shortest-roundtrip
//! formatting and parsed with [`str::parse`], so every finite `f64`
//! round-trips bit-exactly — a property the campaign result cache relies
//! on for byte-identical warm-cache reruns.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::io::Write as IoWrite;

use serde::{DeError, Deserialize, Serialize, Value};

/// A serialization or deserialization failure.
#[derive(Debug)]
pub enum Error {
    /// Malformed JSON at a byte offset.
    Syntax {
        /// What went wrong.
        message: String,
        /// Byte offset into the input.
        offset: usize,
    },
    /// Structurally valid JSON that doesn't match the target type.
    Data(DeError),
    /// An I/O failure while writing.
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Syntax { message, offset } => {
                write!(f, "JSON syntax error at byte {offset}: {message}")
            }
            Error::Data(e) => write!(f, "JSON data error: {e}"),
            Error::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::Data(e)
    }
}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Infallible in practice for the shim model; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes `value` as compact JSON into `writer`.
///
/// # Errors
///
/// Returns [`Error::Io`] if the writer fails.
pub fn to_writer<W: IoWrite, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    let text = to_string(value)?;
    writer.write_all(text.as_bytes()).map_err(Error::Io)
}

/// Parses a JSON string into any deserializable type.
///
/// # Errors
///
/// Returns [`Error::Syntax`] for malformed JSON and [`Error::Data`] when
/// the JSON does not match `T`'s shape.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse_value_str(input)?;
    T::from_value(&value).map_err(Error::Data)
}

/// Parses a JSON string into a raw [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error::Syntax`] for malformed JSON.
pub fn parse_value_str(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters after JSON document"));
    }
    Ok(value)
}

// ---------------------------------------------------------------- writer

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(u) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{u}"));
        }
        Value::Int(i) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{i}"));
        }
        Value::Float(x) => {
            if x.is_finite() {
                // Rust's shortest-roundtrip repr; parse() restores the bits.
                let _ = fmt::Write::write_fmt(out, format_args!("{x}"));
            } else {
                // JSON has no NaN/inf; match serde_json's lossy `null`.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parser

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> Error {
        Error::Syntax {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("JSON nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.parse_escape(&mut out)?;
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_escape(&mut self, out: &mut String) -> Result<(), Error> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0C}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.parse_hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: require a \uXXXX low surrogate.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.parse_hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    } else {
                        return Err(self.err("unpaired high surrogate"));
                    }
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err("unpaired low surrogate"));
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| self.err("invalid unicode escape"))?);
            }
            other => return Err(self.err(format!("invalid escape '\\{}'", other as char))),
        }
        Ok(())
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(from_str::<i32>("-3").unwrap(), -3);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for x in [
            0.1f64,
            1.0 / 3.0,
            1e-300,
            123456789.123456,
            f64::MIN_POSITIVE,
        ] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {json}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\te\u{08}\u{0C}\u{1F}é中🦀".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        // Literal \u escapes, including a surrogate pair.
        assert_eq!(from_str::<String>(r#""é🦀""#).unwrap(), "é🦀");
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![1.5f64, 2.0, -3.25];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<f64>>(&json).unwrap(), v);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("{").is_err());
        assert!(from_str::<u32>("1 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<Vec<u8>>("[1,]").is_err());
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(parse_value_str(&deep).is_err());
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v: Vec<u32> = from_str(" [ 1 , 2 ,\n\t3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn nonfinite_floats_serialize_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }
}
