//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *subset* of the `rand 0.8` API it actually consumes:
//! [`RngCore`], [`SeedableRng`] and [`rngs::StdRng`]. The generator behind
//! `StdRng` is xoshiro256\*\* seeded through SplitMix64 — a different
//! stream than upstream's ChaCha12, but every consumer in this repository
//! treats `StdRng` as an opaque deterministic `u64` source, so only
//! *stability under a fixed seed* matters, and that is guaranteed here:
//! the implementation is pinned in-repo and will never change under a
//! dependency bump.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core trait every random-number source implements.
///
/// Mirrors `rand_core::RngCore` (the object-safe quartet).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Fills `dest` with random bytes, reporting failure (never fails
    /// here).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// Error type for fallible RNG operations (never produced by this shim).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error;

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` (the only constructor this
    /// workspace uses); expands the word with SplitMix64 as `rand` does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256\*\*.
    ///
    /// # Examples
    ///
    /// ```
    /// use rand::rngs::StdRng;
    /// use rand::{RngCore, SeedableRng};
    ///
    /// let mut a = StdRng::seed_from_u64(7);
    /// let mut b = StdRng::seed_from_u64(7);
    /// assert_eq!(a.next_u64(), b.next_u64());
    /// ```
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[1].wrapping_mul(5), 7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    /// Alias kept for API parity with upstream `rand`.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn uniformish_spread() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 10_000;
        let mean = (0..n)
            .map(|_| (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
