//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the value-tree model of the sibling `serde` shim, by hand-parsing the
//! item's token stream (no `syn`/`quote` available offline). Supported
//! container shapes — the ones this workspace uses:
//!
//! * named-field structs (with `#[serde(default)]` on fields),
//! * tuple structs with one field (newtype semantics, so
//!   `#[serde(transparent)]` is honoured and also the default),
//! * enums with unit, newtype, tuple and struct variants, using serde's
//!   externally-tagged JSON convention.
//!
//! Generics and unsupported `#[serde(...)]` attributes (`rename`, `skip`,
//! …) are compile errors rather than silent misbehaviour.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------- model

struct Field {
    name: String,
    default: bool,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Body {
    NamedStruct(Vec<Field>),
    /// A single-field tuple struct (newtype); other arities are rejected
    /// at parse time.
    TupleStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    // Container attributes: skip, but validate any #[serde(...)].
    skip_attrs(&tokens, &mut pos, &mut Vec::new());
    skip_visibility(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic type `{name}` is not supported");
    }

    let body = match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                if n != 1 {
                    panic!(
                        "serde shim derive: tuple struct `{name}` has {n} fields; \
                         only single-field newtypes are supported"
                    );
                }
                Body::TupleStruct
            }
            other => panic!("serde shim derive: unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim derive: malformed enum `{name}`: {other:?}"),
        },
        other => panic!("serde shim derive: expected struct or enum, found `{other}`"),
    };
    Item { name, body }
}

/// Skips attributes starting at `*pos`, collecting recognized `serde`
/// attribute words (`default`, `transparent`) into `serde_words`.
fn skip_attrs(tokens: &[TokenTree], pos: &mut usize, serde_words: &mut Vec<String>) {
    loop {
        match (tokens.get(*pos), tokens.get(*pos + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                collect_serde_words(g.stream(), serde_words);
                *pos += 2;
            }
            _ => return,
        }
    }
}

/// If the bracket group is `serde(...)`, records its comma-separated words
/// and rejects unsupported ones.
fn collect_serde_words(attr: TokenStream, out: &mut Vec<String>) {
    let tokens: Vec<TokenTree> = attr.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            for tok in args.stream() {
                match tok {
                    TokenTree::Ident(word) => {
                        let word = word.to_string();
                        match word.as_str() {
                            "default" | "transparent" => out.push(word),
                            other => panic!(
                                "serde shim derive: unsupported serde attribute `{other}` \
                                 (only `default` and `transparent` are implemented)"
                            ),
                        }
                    }
                    TokenTree::Punct(p) if p.as_char() == ',' => {}
                    other => {
                        panic!("serde shim derive: unsupported serde attribute syntax `{other}`")
                    }
                }
            }
        }
        _ => {} // doc comments, #[non_exhaustive], #[default], ...
    }
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *pos += 1;
        if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            id.to_string()
        }
        other => panic!("serde shim derive: expected identifier, found {other:?}"),
    }
}

/// Parses `name: Type, ...` named-field lists (types are skipped with
/// angle-bracket awareness, so `Vec<(A, B)>` does not split a field).
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let mut words = Vec::new();
        skip_attrs(&tokens, &mut pos, &mut words);
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        let name = expect_ident(&tokens, &mut pos);
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => {
                panic!("serde shim derive: expected ':' after field `{name}`, found {other:?}")
            }
        }
        skip_type(&tokens, &mut pos);
        fields.push(Field {
            name,
            default: words.iter().any(|w| w == "default"),
        });
    }
    fields
}

/// Consumes a type up to (and including) the next top-level comma.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *pos += 1;
                    return;
                }
                _ => {}
            }
        }
        *pos += 1;
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut pos = 0;
    let mut count = 0;
    while pos < tokens.len() {
        skip_attrs(&tokens, &mut pos, &mut Vec::new());
        skip_visibility(&tokens, &mut pos);
        skip_type(&tokens, &mut pos);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attrs(&tokens, &mut pos, &mut Vec::new());
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantShape::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => pos += 1,
            None => {}
            other => panic!(
                "serde shim derive: expected ',' after variant `{name}` \
                 (discriminants are unsupported), found {other:?}"
            ),
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::TupleStruct => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{0}\"), \
                         ::serde::Serialize::to_value(&self.{0}))",
                        f.name
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Body::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| ser_variant_arm(name, v)).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn ser_variant_arm(enum_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.shape {
        VariantShape::Unit => format!(
            "{enum_name}::{vname} => \
             ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
        ),
        VariantShape::Tuple(1) => format!(
            "{enum_name}::{vname}(__f0) => ::serde::Value::Object(vec![\
             (::std::string::String::from(\"{vname}\"), \
              ::serde::Serialize::to_value(__f0))]),"
        ),
        VariantShape::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let vals: Vec<String> = binds
                .iter()
                .map(|b| format!("::serde::Serialize::to_value({b})"))
                .collect();
            format!(
                "{enum_name}::{vname}({}) => ::serde::Value::Object(vec![\
                 (::std::string::String::from(\"{vname}\"), \
                  ::serde::Value::Array(vec![{}]))]),",
                binds.join(", "),
                vals.join(", ")
            )
        }
        VariantShape::Struct(fields) => {
            let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{0}\"), \
                         ::serde::Serialize::to_value({0}))",
                        f.name
                    )
                })
                .collect();
            format!(
                "{enum_name}::{vname} {{ {} }} => ::serde::Value::Object(vec![\
                 (::std::string::String::from(\"{vname}\"), \
                  ::serde::Value::Object(vec![{}]))]),",
                binds.join(", "),
                entries.join(", ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::TupleStruct => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Body::NamedStruct(fields) => {
            let inits: Vec<String> = fields.iter().map(|f| de_field_init(name, f)).collect();
            format!(
                "let __obj = __v.as_object().ok_or_else(|| \
                     ::serde::DeError::expected(\"object\", \"{name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Body::Enum(variants) => gen_enum_deserialize(name, variants),
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}

fn de_field_init(container: &str, f: &Field) -> String {
    let fname = &f.name;
    let missing = if f.default {
        "::std::default::Default::default()".to_string()
    } else {
        format!(
            "return ::std::result::Result::Err(\
             ::serde::DeError::missing(\"{fname}\", \"{container}\"))"
        )
    };
    format!(
        "{fname}: match ::serde::__get(__obj, \"{fname}\") {{\n\
             ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
             ::std::option::Option::None => {missing},\n\
         }}"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = Vec::new();
    let mut tagged_arms = Vec::new();
    for v in variants {
        let vname = &v.name;
        match &v.shape {
            VariantShape::Unit => unit_arms.push(format!(
                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
            )),
            VariantShape::Tuple(1) => tagged_arms.push(format!(
                "\"{vname}\" => ::std::result::Result::Ok(\
                 {name}::{vname}(::serde::Deserialize::from_value(__inner)?)),"
            )),
            VariantShape::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                    .collect();
                tagged_arms.push(format!(
                    "\"{vname}\" => {{\n\
                         let __items = __inner.as_array().ok_or_else(|| \
                             ::serde::DeError::expected(\"array\", \"{name}::{vname}\"))?;\n\
                         if __items.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::DeError::custom(\
                                 format!(\"expected {n} elements for {name}::{vname}, \
                                          got {{}}\", __items.len())));\n\
                         }}\n\
                         ::std::result::Result::Ok({name}::{vname}({}))\n\
                     }},",
                    elems.join(", ")
                ));
            }
            VariantShape::Struct(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| de_field_init(&format!("{name}::{vname}"), f))
                    .collect();
                tagged_arms.push(format!(
                    "\"{vname}\" => {{\n\
                         let __obj = __inner.as_object().ok_or_else(|| \
                             ::serde::DeError::expected(\"object\", \"{name}::{vname}\"))?;\n\
                         ::std::result::Result::Ok({name}::{vname} {{ {} }})\n\
                     }},",
                    inits.join(", ")
                ));
            }
        }
    }
    format!(
        "match __v {{\n\
             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {}\n\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                     format!(\"unknown unit variant '{{__other}}' of {name}\"))),\n\
             }},\n\
             ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __inner) = &__entries[0];\n\
                 match __tag.as_str() {{\n\
                     {}\n\
                     __other => ::std::result::Result::Err(::serde::DeError::custom(\
                         format!(\"unknown variant '{{__other}}' of {name}\"))),\n\
                 }}\n\
             }},\n\
             __other => ::std::result::Result::Err(\
                 ::serde::DeError::expected(\"enum {name}\", __other.kind())),\n\
         }}",
        unit_arms.join("\n"),
        tagged_arms.join("\n")
    )
}
