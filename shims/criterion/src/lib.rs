//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Implements the API surface the workspace's benches use —
//! [`Criterion::benchmark_group`], `sample_size`, `throughput`,
//! `bench_function`, `iter`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros — as a plain wall-clock harness: each
//! benchmark runs `sample_size` timed iterations after one warm-up and
//! prints the mean, min and max per-iteration time (plus derived
//! throughput when configured). No statistics engine, no HTML reports,
//! no comparison against saved baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput specification for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark. Like upstream's `BenchmarkId`,
    /// the name may be anything string-like (`&str` or `String`).
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&name.into(), self.default_sample_size, None, f);
        self
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Declares per-iteration throughput, reported alongside timings.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets a soft cap on measurement time (accepted for API parity;
    /// the shim's fixed sample count already bounds wall clock).
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_benchmark(&full, self.sample_size.unwrap_or(10), self.throughput, f);
        self
    }

    /// Ends the group (kept for API parity).
    pub fn finish(&mut self) {}
}

/// Times closures inside a benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iterations: usize,
}

impl Bencher {
    /// Runs `f` once per sample, timing each run.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up run, untimed.
        black_box(f());
        for _ in 0..self.iterations {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F>(name: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::new(),
        iterations: sample_size.max(1),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name}: no samples recorded");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            format!("  {:.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            format!("  {:.0} B/s", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "{name}: mean {mean:?}  (min {min:?}, max {max:?}, n={}){rate}",
        bencher.samples.len()
    );
}

/// Declares a group-runner function from benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        let mut runs = 0;
        {
            let mut group = c.benchmark_group("shim");
            group.sample_size(3).throughput(Throughput::Elements(10));
            group.bench_function("count", |b| {
                b.iter(|| {
                    runs += 1;
                    black_box(runs)
                })
            });
            group.finish();
        }
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }
}
