//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The build environment has no crates.io access, so this crate provides
//! the serialization model the workspace needs: a self-describing
//! [`Value`] tree plus [`Serialize`]/[`Deserialize`] traits mapping types
//! onto it. `serde_json` (the sibling shim) renders the tree to JSON text
//! and parses it back. The derive macros (`#[derive(Serialize,
//! Deserialize)]`, re-exported from the `serde_derive` shim) understand
//! the container shapes used in this repository: named structs, unit and
//! data-carrying enum variants, `#[serde(transparent)]` newtypes and
//! `#[serde(default)]` fields.
//!
//! The external representation matches real serde's JSON conventions so
//! traces written by one are readable by the other:
//! unit variants as `"Name"`, data variants as `{"Name": ...}`, `Option`
//! as `null`/value, transparent newtypes as their inner value.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A self-describing serialized value (the shim's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer (canonical form for all unsigned values).
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map (insertion order preserved — field order matters for
    /// byte-stable output).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The entries if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Looks up a field in an object's entry list (helper for derived code).
#[doc(hidden)]
pub fn __get<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// A deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// An error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// "expected X while deserializing Y".
    pub fn expected(what: &str, context: &str) -> Self {
        DeError {
            message: format!("expected {what} while deserializing {context}"),
        }
    }

    /// "missing field X of Y".
    pub fn missing(field: &str, context: &str) -> Self {
        DeError {
            message: format!("missing field '{field}' of {context}"),
        }
    }

    /// The error text.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw = match *value {
                    Value::UInt(u) => u,
                    Value::Int(i) if i >= 0 => i as u64,
                    Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                        f as u64
                    }
                    ref other => {
                        return Err(DeError::expected("unsigned integer", other.kind()))
                    }
                };
                <$t>::try_from(raw).map_err(|_| {
                    DeError::custom(format!("integer {raw} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::UInt(v as u64)
                } else {
                    Value::Int(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw: i64 = match *value {
                    Value::UInt(u) => i64::try_from(u)
                        .map_err(|_| DeError::custom(format!("integer {u} out of i64 range")))?,
                    Value::Int(i) => i,
                    Value::Float(f)
                        if f.fract() == 0.0
                            && f >= i64::MIN as f64
                            && f <= i64::MAX as f64 =>
                    {
                        f as i64
                    }
                    ref other => return Err(DeError::expected("integer", other.kind())),
                };
                <$t>::try_from(raw).map_err(|_| {
                    DeError::custom(format!("integer {raw} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match *value {
                    Value::Float(f) => Ok(f as $t),
                    Value::UInt(u) => Ok(u as $t),
                    Value::Int(i) => Ok(i as $t),
                    ref other => Err(DeError::expected("number", other.kind())),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other.kind())),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other.kind())),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other.kind())),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<K: Serialize + Ord + ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let items = value
                    .as_array()
                    .ok_or_else(|| DeError::expected("array", value.kind()))?;
                let mut it = items.iter();
                let got = items.len();
                let tuple = ($(
                    $name::from_value(it.next().ok_or_else(|| {
                        DeError::custom(format!("tuple too short: {got} elements"))
                    })?)?,
                )+);
                Ok(tuple)
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-7i64).to_value()), Ok(-7));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()), Ok(v));
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()), Ok(None));
        assert_eq!(Option::<u8>::from_value(&Some(9u8).to_value()), Ok(Some(9)));
        let t = (1u8, "x".to_string());
        assert_eq!(<(u8, String)>::from_value(&t.to_value()), Ok(t));
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
        assert!(u64::from_value(&Value::Float(0.5)).is_err());
    }

    #[test]
    fn type_mismatches_error() {
        assert!(bool::from_value(&Value::UInt(1)).is_err());
        assert!(String::from_value(&Value::Null).is_err());
        assert!(Vec::<u8>::from_value(&Value::Str("no".into())).is_err());
    }
}
