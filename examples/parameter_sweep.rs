//! Sweeping LAS_MQ's parameters (queue count and first threshold) on a
//! heavy-tailed trace, then asking the threshold auto-tuner for a
//! suggestion — the workflow an operator would use to configure the
//! scheduler for their own cluster.
//!
//! ```text
//! cargo run --release --example parameter_sweep
//! ```

use lasmq::core::{tuning, LasMq, LasMqConfig};
use lasmq::schedulers::Fair;
use lasmq::simulator::{ClusterConfig, JobSpec, Scheduler, Simulation};
use lasmq::workload::FacebookTrace;

fn mean_response(jobs: &[JobSpec], scheduler: impl Scheduler) -> f64 {
    Simulation::builder()
        .cluster(ClusterConfig::single_node(100))
        .jobs(jobs.to_vec())
        .build(scheduler)
        .expect("valid setup")
        .run()
        .mean_response_secs()
        .expect("all jobs complete")
}

fn main() {
    let jobs = FacebookTrace::new().jobs(4_000).seed(5).generate();
    let fair = mean_response(&jobs, Fair::new());
    println!("Fair baseline: {fair:.2}s\n");

    println!("queues  normalized (Fair/ours)");
    for k in [1, 2, 4, 5, 10] {
        let config = LasMqConfig::paper_simulations().with_num_queues(k);
        let ours = mean_response(&jobs, LasMq::new(config));
        println!("{k:>6}  {:.2}", fair / ours);
    }

    println!("\nfirst threshold  normalized (Fair/ours)");
    for alpha in [0.01, 0.1, 1.0, 10.0, 100.0] {
        let config = LasMqConfig::paper_simulations().with_first_threshold(alpha);
        let ours = mean_response(&jobs, LasMq::new(config));
        println!("{alpha:>15}  {:.2}", fair / ours);
    }

    // The tuner looks at a historical size sample (here: the trace's own
    // sizes — in production, yesterday's jobs) and proposes (k, α₁).
    let sizes: Vec<f64> = jobs
        .iter()
        .map(|j| j.total_service().as_container_secs())
        .collect();
    let suggestion = tuning::suggest(&sizes, 10.0).expect("sane sample");
    println!(
        "\nauto-tuner suggests: k = {}, α₁ = {:.2} (step {})",
        suggestion.num_queues, suggestion.first_threshold, suggestion.step,
    );
    let tuned = suggestion.apply_to(LasMqConfig::paper_simulations());
    let ours = mean_response(&jobs, LasMq::new(tuned));
    println!("tuned LAS_MQ: normalized {:.2}", fair / ours);
}
