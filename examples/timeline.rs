//! Observability: record a run's event journal and print a per-job
//! timeline plus a text Gantt chart of cluster usage.
//!
//! ```text
//! cargo run --release --example timeline
//! ```

use lasmq::core::{LasMq, LasMqConfig};
use lasmq::simulator::{ClusterConfig, SimEvent, Simulation};
use lasmq::workload::PumaWorkload;

fn main() {
    let jobs = PumaWorkload::new()
        .jobs(6)
        .mean_interval_secs(40.0)
        .seed(13)
        .generate();
    let report = Simulation::builder()
        .cluster(ClusterConfig::new(4, 30))
        .record_journal(true)
        .jobs(jobs)
        .build(LasMq::new(LasMqConfig::paper_experiments()))
        .expect("valid setup")
        .run();
    let journal = report.journal().expect("journal requested");
    println!("{} events recorded\n", journal.len());

    // Per-job lifecycle summary.
    for outcome in report.outcomes() {
        let starts = journal
            .for_job(outcome.id)
            .filter(|e| matches!(e, SimEvent::TaskStarted { .. }))
            .count();
        let stages = journal
            .for_job(outcome.id)
            .filter(|e| matches!(e, SimEvent::StageCompleted { .. }))
            .count();
        println!(
            "{} [{}] submitted {} admitted {} finished {} — {} task starts, {} stage boundaries",
            outcome.id,
            outcome.label,
            outcome.arrival,
            outcome.admitted_at.expect("admitted"),
            outcome.finish.expect("finished"),
            starts,
            stages + 1,
        );
    }

    // A coarse text Gantt: one row per job, one column per time bucket.
    let makespan = report.stats().makespan.as_secs_f64();
    let buckets = 60usize;
    let bucket = makespan / buckets as f64;
    println!("\ntimeline (each column = {bucket:.0}s):");
    for outcome in report.outcomes() {
        let mut row = vec![' '; buckets];
        let from = outcome.arrival.as_secs_f64();
        let to = outcome.finish.expect("finished").as_secs_f64();
        let first_alloc = outcome.first_allocation.expect("allocated").as_secs_f64();
        for (i, cell) in row.iter_mut().enumerate() {
            let t = i as f64 * bucket;
            if t >= from && t <= to {
                *cell = if t < first_alloc { '.' } else { '#' };
            }
        }
        println!(
            "{:>6} |{}|",
            outcome.id.to_string(),
            row.into_iter().collect::<String>()
        );
    }
    println!("        '.' waiting, '#' holding containers");
}
