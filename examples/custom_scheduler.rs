//! Implementing your own scheduler against the simulator's `Scheduler`
//! trait — here, a "smallest demand first" heuristic — and racing it
//! against LAS_MQ.
//!
//! The `JobView` a scheduler receives hides true job sizes (the paper's
//! whole premise): you can only use arrival times, attained service,
//! stage progress and remaining-task demand, exactly like a real YARN
//! plug-in scheduler.
//!
//! ```text
//! cargo run --release --example custom_scheduler
//! ```

use lasmq::core::LasMq;
use lasmq::simulator::{AllocationPlan, ClusterConfig, SchedContext, Scheduler, Simulation};
use lasmq::workload::FacebookTrace;

/// Serves jobs in ascending order of the container demand of their
/// remaining tasks — a greedy "quickest to clear" heuristic.
struct SmallestDemandFirst;

impl Scheduler for SmallestDemandFirst {
    fn name(&self) -> &str {
        "SDF"
    }

    fn allocate(&mut self, ctx: &SchedContext<'_>) -> AllocationPlan {
        let mut order: Vec<usize> = (0..ctx.jobs().len()).collect();
        order.sort_by_key(|&i| {
            let j = &ctx.jobs()[i];
            (j.remaining_demand(), j.arrival, j.id)
        });
        let mut plan = AllocationPlan::new();
        let mut budget = ctx.total_containers();
        for i in order {
            if budget == 0 {
                break;
            }
            let j = &ctx.jobs()[i];
            let want = j.max_useful_allocation().min(budget);
            if want > 0 {
                plan.push(j.id, want);
                budget -= want;
            }
        }
        plan
    }
}

fn main() {
    let jobs = FacebookTrace::new().jobs(3_000).seed(11).generate();
    let cluster = ClusterConfig::single_node(100);

    let custom = Simulation::builder()
        .cluster(cluster)
        .jobs(jobs.clone())
        .build(SmallestDemandFirst)
        .expect("valid setup")
        .run();
    let las_mq = Simulation::builder()
        .cluster(cluster)
        .jobs(jobs)
        .build(LasMq::new(lasmq::core::LasMqConfig::paper_simulations()))
        .expect("valid setup")
        .run();

    for report in [&custom, &las_mq] {
        println!(
            "{:>7}: mean response {:>8.2}s, mean slowdown {:>6.1}, utilization {:.0}%",
            report.scheduler(),
            report.mean_response_secs().unwrap(),
            report.mean_slowdown().unwrap(),
            report.stats().mean_utilization * 100.0,
        );
    }
}
