//! Freezing a workload to a JSON trace file and replaying it — the
//! round-trip that makes experiments shareable and reproducible.
//!
//! ```text
//! cargo run --release --example trace_replay
//! ```

use lasmq::core::{LasMq, LasMqConfig};
use lasmq::simulator::{ClusterConfig, Simulation};
use lasmq::workload::{FacebookTrace, Trace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a scaled-down heavy-tailed trace and freeze it to disk.
    let jobs = FacebookTrace::new().jobs(2_000).seed(3).generate();
    let trace = Trace::new("facebook-2010-synthetic-mini", jobs);
    let path = std::env::temp_dir().join("lasmq-example-trace.json");
    trace.save(&path)?;
    let summary = trace.summary();
    println!(
        "saved '{}' to {}: {} jobs, mean size {:.1} c·s, max {:.0} c·s",
        trace.name(),
        path.display(),
        summary.job_count,
        summary.mean_size,
        summary.max_size,
    );

    // 2. Reload and replay. Anyone holding the file gets bit-identical
    //    scheduling: the engine is deterministic.
    let replayed = Trace::load(&path)?;
    assert_eq!(replayed, trace);
    let report = Simulation::builder()
        .cluster(ClusterConfig::single_node(100))
        .jobs(replayed.into_jobs())
        .build(LasMq::new(LasMqConfig::paper_simulations()))?
        .run();

    println!(
        "replayed under {}: {} / {} jobs completed, mean response {:.2}s, p99 {:.1}s",
        report.scheduler(),
        report.completed_count(),
        report.outcomes().len(),
        report.mean_response_secs().unwrap(),
        report.response_percentile(0.99).unwrap(),
    );
    std::fs::remove_file(path).ok();
    Ok(())
}
