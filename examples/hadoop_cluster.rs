//! A Hadoop-cluster scenario straight out of the paper's introduction:
//! ad-hoc analytics jobs of wildly different sizes share a YARN cluster,
//! and the operator wants small jobs to stop queueing behind big ones —
//! without job-size estimates, with speculation cleaning up stragglers.
//!
//! ```text
//! cargo run --release --example hadoop_cluster
//! ```

use lasmq::core::{LasMq, LasMqConfig};
use lasmq::schedulers::Fair;
use lasmq::simulator::{ClusterConfig, Scheduler, Simulation, SimulationReport, SpeculationConfig};
use lasmq::workload::PumaWorkload;

fn run(jobs: Vec<lasmq::simulator::JobSpec>, scheduler: impl Scheduler) -> SimulationReport {
    Simulation::builder()
        .cluster(ClusterConfig::new(4, 30))
        .admission_limit(30)
        // Work-conservation leftovers launch speculative task copies
        // (Algorithm 2's closing remark in the paper).
        .speculation(SpeculationConfig::enabled(3, 1.5))
        .jobs(jobs)
        .build(scheduler)
        .expect("valid setup")
        .run()
}

fn main() {
    // The full Table I mix: 100 jobs from TeraGen (1 GB) to WordCount
    // (100 GB), bins 1-4, arriving every ~50 s on average.
    let jobs = PumaWorkload::new()
        .jobs(100)
        .mean_interval_secs(50.0)
        .seed(2026)
        .generate();

    let fair = run(jobs.clone(), Fair::new());
    let las_mq = run(jobs, LasMq::new(LasMqConfig::paper_experiments()));

    println!("per-bin mean response time (s):\n");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "policy", "bin1", "bin2", "bin3", "bin4", "ALL"
    );
    for report in [&fair, &las_mq] {
        print!("{:>8}", report.scheduler());
        for bin in 1..=4u8 {
            print!(
                " {:>10.0}",
                report.mean_response_secs_for_bin(bin).unwrap_or(f64::NAN)
            );
        }
        println!(" {:>10.0}", report.mean_response_secs().unwrap());
    }

    println!(
        "\nspeculative copies: {} launched, {} won (rescued stragglers)",
        las_mq.stats().speculative_launched,
        las_mq.stats().speculative_won,
    );
    println!(
        "small jobs (bin 1) under LAS_MQ finish {:.1}x faster than under Fair",
        fair.mean_response_secs_for_bin(1).unwrap() / las_mq.mean_response_secs_for_bin(1).unwrap(),
    );
}
