//! Quickstart: schedule a mixed workload with every scheduler and compare
//! mean response times.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lasmq::core::{LasMq, LasMqConfig};
use lasmq::schedulers::{Fair, Fifo, Las};
use lasmq::simulator::{ClusterConfig, Scheduler, Simulation, SimulationReport};
use lasmq::workload::PumaWorkload;

fn run(jobs: &[lasmq::simulator::JobSpec], scheduler: impl Scheduler) -> SimulationReport {
    Simulation::builder()
        .cluster(ClusterConfig::new(4, 30)) // the paper's 120-container testbed
        .admission_limit(30)
        .jobs(jobs.to_vec())
        .build(scheduler)
        .expect("workload validated at generation time")
        .run()
}

fn main() {
    // 40 Hadoop jobs sampled from the paper's Table I mix, Poisson
    // arrivals with a 50 s mean interval.
    let jobs = PumaWorkload::new()
        .jobs(40)
        .mean_interval_secs(50.0)
        .seed(7)
        .generate();

    let reports = vec![
        run(&jobs, LasMq::new(LasMqConfig::paper_experiments())),
        run(&jobs, Las::new()),
        run(&jobs, Fair::new()),
        run(&jobs, Fifo::new()),
    ];

    println!(
        "{:>8}  {:>14}  {:>12}  {:>11}",
        "policy", "mean resp (s)", "p90 resp (s)", "slowdown"
    );
    for report in &reports {
        println!(
            "{:>8}  {:>14.0}  {:>12.0}  {:>11.1}",
            report.scheduler(),
            report.mean_response_secs().unwrap(),
            report.response_percentile(0.9).unwrap(),
            report.mean_slowdown().unwrap(),
        );
    }

    let fair = reports[2].mean_response_secs().unwrap();
    let ours = reports[0].mean_response_secs().unwrap();
    println!(
        "\nLAS_MQ reduces the Fair scheduler's mean response time by {:.0}%",
        (1.0 - ours / fair) * 100.0
    );
}
