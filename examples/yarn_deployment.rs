//! The paper's Fig. 4 deployment path, end to end: LAS_MQ driving an
//! emulated YARN capacity scheduler by updating per-application queue
//! capacities — compared against running LAS_MQ directly.
//!
//! ```text
//! cargo run --release --example yarn_deployment
//! ```

use lasmq::core::{LasMq, LasMqConfig};
use lasmq::simulator::{ClusterConfig, Scheduler, Simulation, SimulationReport};
use lasmq::workload::PumaWorkload;
use lasmq::yarn::{CapacityController, CapacityGranularity, CapacityScheduler};

fn run(jobs: Vec<lasmq::simulator::JobSpec>, scheduler: impl Scheduler) -> SimulationReport {
    Simulation::builder()
        .cluster(ClusterConfig::new(4, 30))
        .admission_limit(30)
        .jobs(jobs)
        .build(scheduler)
        .expect("valid setup")
        .run()
}

fn main() {
    let jobs = PumaWorkload::new()
        .jobs(60)
        .mean_interval_secs(50.0)
        .seed(99)
        .generate();

    // 1. Plain YARN: the capacity scheduler with nobody updating
    //    capacities — every app keeps an equal default share.
    let plain = run(
        jobs.clone(),
        CapacityScheduler::new(CapacityGranularity::WholePercent),
    );
    // 2. LAS_MQ wired directly into the simulator (the idealized plug-in).
    let direct = run(jobs.clone(), LasMq::new(LasMqConfig::paper_experiments()));
    // 3. LAS_MQ deployed the paper's way: recompute queue capacities every
    //    round, quantized to whole percents like a real
    //    capacity-scheduler.xml.
    let deployed = run(
        jobs,
        CapacityController::new(
            LasMq::new(LasMqConfig::paper_experiments()),
            CapacityGranularity::WholePercent,
        ),
    );

    println!(
        "{:>18}  {:>14}  {:>14}",
        "deployment", "mean resp (s)", "mean slowdown"
    );
    for report in [&plain, &direct, &deployed] {
        println!(
            "{:>18}  {:>14.0}  {:>14.1}",
            report.scheduler(),
            report.mean_response_secs().unwrap(),
            report.mean_slowdown().unwrap(),
        );
    }
    let gap = (deployed.mean_response_secs().unwrap() / direct.mean_response_secs().unwrap() - 1.0)
        * 100.0;
    println!(
        "\ncapacity indirection (Fig. 4) costs {gap:+.1}% vs the direct plug-in — \
         the paper's deployment mechanism carries its algorithm faithfully"
    );
}
