#!/usr/bin/env sh
# Re-record the committed perf-smoke baseline (BENCH_5.json).
#
# Run this on a quiet machine after an *intentional* throughput change —
# the CI perf gate compares future runs against the numbers recorded
# here. The event count in the baseline is deterministic (same trace,
# same scheduler ⇒ same events); only events/sec is hardware-dependent.
#
# Usage: scripts/record-bench.sh [extra perf-smoke args]
set -eu
cd "$(dirname "$0")/.."

cargo build --offline --release -p lasmq-bench
./target/release/perf-smoke --emit BENCH_5.json "$@"
echo "--- BENCH_5.json ---"
cat BENCH_5.json
echo "Commit BENCH_5.json alongside the change that justified re-recording it."
