#!/usr/bin/env sh
# Re-record the committed perf baselines:
#
#   BENCH_5.json — engine event throughput (perf-smoke, the CI gate)
#   BENCH_6.json — daemon sustained submission throughput and latency
#                  percentiles (full 24,443-job Facebook trace replayed
#                  open-loop at a fixed rate against lasmq-serve)
#   BENCH_7.json — million-job scale throughput (perf-smoke --trace scale:
#                  1M heavy-tailed jobs on a 1,000-node x 8-container
#                  cluster; each iteration runs for minutes)
#
# Run this on a quiet machine after an *intentional* throughput change —
# the CI perf gate compares future runs against the numbers recorded
# here. The event count in BENCH_5 is deterministic (same trace, same
# scheduler ⇒ same events); every rate and percentile is
# hardware-dependent.
#
# Usage: scripts/record-bench.sh [extra perf-smoke args]
set -eu
cd "$(dirname "$0")/.."

cargo build --offline --release -p lasmq-bench -p lasmq-serve
./target/release/perf-smoke --emit BENCH_5.json "$@"
echo "--- BENCH_5.json ---"
cat BENCH_5.json

./target/release/perf-smoke --trace scale --emit BENCH_7.json "$@"
echo "--- BENCH_7.json ---"
cat BENCH_7.json

# The daemon measurement: open-loop replay of the whole trace at a rate
# (15k jobs/s) above the acceptance floor (10k sustained), so the
# recorded submissions_per_sec shows what the engine actually absorbed.
SERVE_LOG=target/record-bench-serve.log
./target/release/lasmq-serve --listen 127.0.0.1:0 --compression 100000 \
    >"$SERVE_LOG" 2>&1 &
SERVE_PID=$!
i=0
ADDR=""
while [ "$i" -lt 100 ]; do
    ADDR=$(sed -n 's/^lasmq-serve listening on //p' "$SERVE_LOG")
    [ -n "$ADDR" ] && break
    i=$((i + 1))
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "lasmq-serve never reported its address" >&2; exit 1; }
./target/release/lasmq-loadgen --addr "$ADDR" --jobs 24443 --rate 15000 \
    --emit BENCH_6.json --shutdown
wait "$SERVE_PID"
echo "--- BENCH_6.json ---"
cat BENCH_6.json
echo "Commit the baselines alongside the change that justified re-recording them."
