#!/usr/bin/env sh
# End-to-end daemon smoke test (also run by CI):
#
#   1. start lasmq-serve on an ephemeral port with a snapshot path,
#   2. replay the first 500 jobs of the Facebook trace open-loop,
#   3. SIGTERM the daemon mid-trace and require a clean exit plus a
#      final snapshot on disk,
#   4. restart with --resume and replay the rest (jobs 500..1000),
#   5. drain, query metrics, and shut down via the protocol verb.
#
# Usage: scripts/serve-smoke.sh  (binaries must already be built
# --release; CI runs it after `cargo build --offline --release`).
set -eu
cd "$(dirname "$0")/.."

SERVE=./target/release/lasmq-serve
LOADGEN=./target/release/lasmq-loadgen
OUT=target/serve-smoke
SNAP=$OUT/state.json
rm -rf "$OUT"
mkdir -p "$OUT"

# Waits for the daemon behind $1 (a log file) to print its bound
# address, then echoes it.
scrape_addr() {
    i=0
    while [ "$i" -lt 100 ]; do
        addr=$(sed -n 's/^lasmq-serve listening on //p' "$1")
        if [ -n "$addr" ]; then
            echo "$addr"
            return 0
        fi
        i=$((i + 1))
        sleep 0.1
    done
    echo "daemon never reported its listen address (see $1)" >&2
    return 1
}

echo "--- phase 1: fresh daemon, first 500 jobs, SIGTERM ---"
"$SERVE" --listen 127.0.0.1:0 --compression 100000 \
    --snapshot-path "$SNAP" >"$OUT/serve1.log" 2>&1 &
SERVE_PID=$!
ADDR=$(scrape_addr "$OUT/serve1.log")

"$LOADGEN" --addr "$ADDR" --jobs 500 --rate 5000

kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || { echo "daemon did not exit cleanly on SIGTERM" >&2; exit 1; }
grep -q "clean shutdown" "$OUT/serve1.log" || {
    echo "daemon log is missing the clean-shutdown summary" >&2
    cat "$OUT/serve1.log" >&2
    exit 1
}
[ -f "$SNAP" ] || { echo "SIGTERM did not leave a final snapshot at $SNAP" >&2; exit 1; }
echo "SIGTERM exit clean, snapshot written"

echo "--- phase 2: resume, jobs 500..1000, drain, protocol shutdown ---"
"$SERVE" --listen 127.0.0.1:0 --compression 100000 \
    --snapshot-path "$SNAP" --resume >"$OUT/serve2.log" 2>&1 &
SERVE_PID=$!
ADDR=$(scrape_addr "$OUT/serve2.log")

# No pipe here: a pipeline would mask the loadgen exit code.
"$LOADGEN" --addr "$ADDR" --skip 500 --jobs 1000 --rate 5000 \
    --drain-timeout-secs 120 --shutdown >"$OUT/loadgen2.log"
cat "$OUT/loadgen2.log"

wait "$SERVE_PID" || { echo "daemon did not exit cleanly on shutdown verb" >&2; exit 1; }
grep -q "clean shutdown" "$OUT/serve2.log" || {
    echo "resumed daemon log is missing the clean-shutdown summary" >&2
    cat "$OUT/serve2.log" >&2
    exit 1
}
grep -q "drained: all 1000 jobs finished" "$OUT/loadgen2.log" || {
    echo "resumed daemon did not finish all 1000 jobs" >&2
    exit 1
}
grep -q "server decision latency" "$OUT/loadgen2.log" || {
    echo "metrics digest missing from the loadgen report" >&2
    exit 1
}
echo "serve smoke test OK: kill -> resume -> drain across 1000 Facebook-trace jobs"
