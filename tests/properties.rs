//! Property-based tests over the whole stack: random workloads, random
//! clusters, every scheduler — the engine's core invariants must hold for
//! all of them.

use proptest::prelude::*;

use lasmq::core::{LasMq, LasMqConfig};
use lasmq::schedulers::{Fair, Fifo, Las};
use lasmq::simulator::{
    ClusterConfig, JobSpec, SimDuration, SimTime, Simulation, SimulationReport, StageKind,
    StageSpec, TaskSpec,
};

/// Strategy: one random stage (1–12 tasks, 1–30 s, width 1 or 2).
fn stage_strategy() -> impl Strategy<Value = StageSpec> {
    (
        1u32..=12,
        prop::collection::vec(1u64..=30, 12),
        prop::bool::ANY,
    )
        .prop_map(|(count, durations, wide)| {
            let width = if wide { 2 } else { 1 };
            let tasks: Vec<TaskSpec> = (0..count as usize)
                .map(|i| TaskSpec::new(SimDuration::from_secs(durations[i])).with_containers(width))
                .collect();
            StageSpec::new(
                if wide {
                    StageKind::Reduce
                } else {
                    StageKind::Map
                },
                tasks,
            )
        })
}

/// Strategy: one random job (1–3 stages, arrival within 100 s, priority
/// 1–5).
fn job_strategy() -> impl Strategy<Value = JobSpec> {
    (
        prop::collection::vec(stage_strategy(), 1..=3),
        0u64..100,
        1u8..=5,
    )
        .prop_map(|(stages, arrival, priority)| {
            JobSpec::builder()
                .arrival(SimTime::from_secs(arrival))
                .priority(priority)
                .stages(stages)
                .build()
        })
}

fn run_all_schedulers(
    jobs: &[JobSpec],
    containers: u32,
    admission: Option<usize>,
) -> Vec<SimulationReport> {
    let build = |scheduler: Box<dyn lasmq::simulator::Scheduler>| {
        let mut builder = Simulation::builder()
            .cluster(ClusterConfig::single_node(containers))
            .jobs(jobs.to_vec());
        if let Some(limit) = admission {
            builder = builder.admission_limit(limit);
        }
        builder.build(scheduler).expect("valid setup").run()
    };
    vec![
        build(Box::new(Fifo::new())),
        build(Box::new(Fair::new())),
        build(Box::new(Las::new())),
        build(Box::new(LasMq::new(
            LasMqConfig::paper_experiments()
                .with_first_threshold(10.0)
                .with_num_queues(4),
        ))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every scheduler finishes every job, and no job finishes faster than
    /// it could alone on the cluster.
    #[test]
    fn all_jobs_complete_with_sane_responses(
        jobs in prop::collection::vec(job_strategy(), 1..12),
        containers in 2u32..=16,
        admission in prop::option::of(1usize..6),
    ) {
        for report in run_all_schedulers(&jobs, containers, admission) {
            prop_assert!(report.all_completed(), "{} unfinished", report.scheduler());
            for o in report.outcomes() {
                let resp = o.response().expect("completed").as_secs_f64();
                prop_assert!(resp + 1e-9 >= o.isolated.as_secs_f64(),
                    "{}: {} responded {resp}s < isolated {}s",
                    report.scheduler(), o.id, o.isolated.as_secs_f64());
                prop_assert!(o.admitted_at.expect("admitted") >= o.arrival);
                prop_assert!(o.finish.expect("finished") >= o.admitted_at.unwrap());
            }
        }
    }

    /// Graceful engines waste nothing: the utilization integral equals the
    /// total work of the workload, for every scheduler.
    #[test]
    fn no_container_time_is_lost_or_invented(
        jobs in prop::collection::vec(job_strategy(), 1..10),
        containers in 2u32..=16,
    ) {
        let total_work: f64 = jobs.iter().map(|j| j.total_service().as_container_secs()).sum();
        for report in run_all_schedulers(&jobs, containers, None) {
            let s = report.stats();
            let integral = s.mean_utilization * s.makespan.as_secs_f64() * containers as f64;
            prop_assert!((integral - total_work).abs() < 1e-6 * total_work.max(1.0),
                "{}: {integral} vs {total_work}", report.scheduler());
        }
    }

    /// Bit-identical reruns: the whole stack is a pure function of its
    /// inputs.
    #[test]
    fn reruns_are_bit_identical(
        jobs in prop::collection::vec(job_strategy(), 1..8),
        containers in 2u32..=12,
    ) {
        let a = run_all_schedulers(&jobs, containers, Some(3));
        let b = run_all_schedulers(&jobs, containers, Some(3));
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.outcomes(), y.outcomes());
            prop_assert_eq!(x.stats(), y.stats());
        }
    }

    /// The makespan never beats the theoretical lower bound
    /// (total work / capacity), and a work-conserving schedule of a
    /// saturating workload cannot dawdle beyond arrival + the full serial
    /// drain.
    #[test]
    fn makespan_respects_capacity_bounds(
        jobs in prop::collection::vec(job_strategy(), 1..10),
        containers in 2u32..=8,
    ) {
        let total_work: f64 = jobs.iter().map(|j| j.total_service().as_container_secs()).sum();
        let last_arrival =
            jobs.iter().map(|j| j.arrival().as_secs_f64()).fold(0.0, f64::max);
        for report in run_all_schedulers(&jobs, containers, None) {
            let makespan = report.stats().makespan.as_secs_f64();
            prop_assert!(makespan + 1e-9 >= total_work / containers as f64,
                "{}: makespan {makespan} beats the capacity bound", report.scheduler());
            // Loose upper bound: every job could run serially after the
            // last arrival, one task at a time.
            let serial: f64 = jobs
                .iter()
                .flat_map(|j| j.stages())
                .flat_map(|s| s.tasks())
                .map(|t| t.duration().as_secs_f64())
                .sum();
            prop_assert!(makespan <= last_arrival + serial + 1.0,
                "{}: makespan {makespan} exceeds the serial bound", report.scheduler());
        }
    }
}
