//! Cross-crate integration tests: workload generation → trace round-trip
//! → simulation under every scheduler → metric invariants.

use lasmq::core::{LasMq, LasMqConfig};
use lasmq::schedulers::{Fair, Fifo, Las, ShortestJobFirst, ShortestRemainingFirst};
use lasmq::simulator::{ClusterConfig, JobSpec, Scheduler, Simulation, SimulationReport};
use lasmq::workload::{FacebookTrace, PumaWorkload, Trace, UniformWorkload};

fn run_trace(jobs: Vec<JobSpec>, scheduler: impl Scheduler, oracle: bool) -> SimulationReport {
    Simulation::builder()
        .cluster(ClusterConfig::single_node(100))
        .expose_oracle(oracle)
        .jobs(jobs)
        .build(scheduler)
        .expect("valid setup")
        .run()
}

#[test]
fn every_scheduler_completes_the_trace_workload() {
    let jobs = FacebookTrace::new().jobs(300).seed(1).generate();
    let reports = vec![
        run_trace(jobs.clone(), Fifo::new(), false),
        run_trace(jobs.clone(), Fair::new(), false),
        run_trace(jobs.clone(), Las::new(), false),
        run_trace(
            jobs.clone(),
            LasMq::new(LasMqConfig::paper_simulations()),
            false,
        ),
        run_trace(jobs.clone(), ShortestJobFirst::new(), true),
        run_trace(jobs, ShortestRemainingFirst::new(), true),
    ];
    for report in &reports {
        assert!(
            report.all_completed(),
            "{} left jobs unfinished",
            report.scheduler()
        );
        assert_eq!(report.outcomes().len(), 300);
    }
}

#[test]
fn responses_never_beat_isolated_runtime() {
    let jobs = PumaWorkload::new().jobs(30).seed(2).generate();
    let report = Simulation::builder()
        .cluster(ClusterConfig::new(4, 30))
        .admission_limit(30)
        .jobs(jobs)
        .build(LasMq::with_paper_defaults())
        .expect("valid setup")
        .run();
    for o in report.outcomes() {
        let resp = o.response().expect("completed").as_secs_f64();
        let iso = o.isolated.as_secs_f64();
        assert!(
            resp >= iso * 0.999,
            "{}: response {resp} below isolated {iso}",
            o.id
        );
        assert!(o.slowdown().expect("completed") >= 0.999);
    }
}

#[test]
fn utilization_integral_accounts_for_all_work() {
    // With graceful preemption and no speculation, every consumed
    // container-second is productive: mean utilization × makespan ×
    // capacity equals the workload's total service.
    let jobs = FacebookTrace::new().jobs(200).seed(3).generate();
    let total_work: f64 = jobs
        .iter()
        .map(|j| j.total_service().as_container_secs())
        .sum();
    for report in [
        run_trace(jobs.clone(), Fifo::new(), false),
        run_trace(
            jobs.clone(),
            LasMq::new(LasMqConfig::paper_simulations()),
            false,
        ),
    ] {
        let s = report.stats();
        let integral = s.mean_utilization * s.makespan.as_secs_f64() * 100.0;
        let rel = (integral - total_work).abs() / total_work;
        assert!(
            rel < 1e-6,
            "{}: integral {integral} vs work {total_work}",
            report.scheduler()
        );
    }
}

#[test]
fn trace_roundtrip_preserves_simulation_results() {
    let jobs = FacebookTrace::new().jobs(150).seed(4).generate();
    let trace = Trace::new("roundtrip", jobs.clone());
    let json = trace.to_json().expect("serializable");
    let reloaded = Trace::from_json(&json).expect("parsable");
    let a = run_trace(jobs, Las::new(), false);
    let b = run_trace(reloaded.into_jobs(), Las::new(), false);
    assert_eq!(a.outcomes(), b.outcomes());
}

#[test]
fn simulations_are_deterministic_across_runs() {
    let jobs = PumaWorkload::new().jobs(25).seed(5).generate();
    let run = || {
        Simulation::builder()
            .cluster(ClusterConfig::new(4, 30))
            .admission_limit(10)
            .jobs(jobs.clone())
            .build(LasMq::with_paper_defaults())
            .expect("valid setup")
            .run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.outcomes(), b.outcomes());
    assert_eq!(a.stats(), b.stats());
}

#[test]
fn admission_limit_bounds_concurrency() {
    let jobs = UniformWorkload::new().jobs(40).tasks_per_job(10).generate();
    let limit = 7usize;
    let report = Simulation::builder()
        .cluster(ClusterConfig::single_node(20))
        .admission_limit(limit)
        .jobs(jobs)
        .build(Fifo::new())
        .expect("valid setup")
        .run();
    assert!(report.all_completed());
    // Sweep the admission intervals: at no instant may more than `limit`
    // jobs be admitted-but-unfinished.
    let mut events: Vec<(u64, i64)> = Vec::new();
    for o in report.outcomes() {
        events.push((o.admitted_at.expect("admitted").as_millis(), 1));
        events.push((o.finish.expect("finished").as_millis(), -1));
    }
    events.sort();
    let mut running = 0i64;
    for (_, delta) in events {
        running += delta;
        assert!(
            running <= limit as i64,
            "admission limit exceeded: {running}"
        );
    }
}

#[test]
fn oracle_schedulers_refuse_to_run_blind() {
    let jobs = FacebookTrace::new().jobs(10).seed(6).generate();
    let err = Simulation::builder()
        .cluster(ClusterConfig::single_node(10))
        .jobs(jobs)
        .build(ShortestJobFirst::new())
        .unwrap_err();
    assert!(err.to_string().contains("expose_oracle"));
}

#[test]
fn las_mq_runs_under_all_engine_extensions() {
    use lasmq::simulator::{PreemptionPolicy, SpeculationConfig};
    let jobs = PumaWorkload::new().jobs(20).seed(7).generate();
    for (preemption, speculation) in [
        (PreemptionPolicy::Graceful, SpeculationConfig::disabled()),
        (PreemptionPolicy::Kill, SpeculationConfig::disabled()),
        (
            PreemptionPolicy::Graceful,
            SpeculationConfig::enabled(3, 1.5),
        ),
        (PreemptionPolicy::Kill, SpeculationConfig::enabled(2, 2.0)),
    ] {
        let report = Simulation::builder()
            .cluster(ClusterConfig::new(4, 30))
            .preemption(preemption)
            .speculation(speculation)
            .jobs(jobs.clone())
            .build(LasMq::with_paper_defaults())
            .expect("valid setup")
            .run();
        assert!(
            report.all_completed(),
            "unfinished jobs under {preemption:?}/{speculation:?}"
        );
    }
}
