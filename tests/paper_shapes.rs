//! Shape tests: the qualitative results of every figure in the paper must
//! hold at a moderate scale (sized to stay fast in debug builds; the full
//! paper scale runs via `cargo run --release -p lasmq-experiments --bin
//! repro`).

use lasmq::experiments::{fig3, fig56, fig7, fig8, Scale};

fn shapes_scale() -> Scale {
    Scale {
        puma_jobs: 60,
        puma_repetitions: 1,
        facebook_jobs: 2_500,
        uniform_jobs: 150,
        uniform_tasks_per_job: 1_000,
        seed: 42,
    }
}

#[test]
fn fig3_both_features_beat_fair_and_each_feature_helps() {
    let r = fig3::run(&shapes_scale());
    // Case 4 (the shipped design) beats Fair outright.
    assert!(r.case(3) > 1.0, "Case 4 = {}", r.case(3));
    // In-queue ordering is the big lever (Case 3 ≫ Case 1)…
    assert!(
        r.case(2) > r.case(0) * 1.2,
        "ordering: {} vs {}",
        r.case(2),
        r.case(0)
    );
    // …and stage awareness adds on top of it (Case 4 ≥ Case 3).
    assert!(
        r.case(3) >= r.case(2) * 0.97,
        "awareness: {} vs {}",
        r.case(3),
        r.case(2)
    );
}

#[test]
fn fig5_lasmq_cuts_mean_response_against_every_baseline() {
    let r = fig56::run(&shapes_scale(), 80.0);
    for baseline in ["LAS", "FAIR", "FIFO"] {
        let cut = r.lasmq_reduction_vs(baseline).expect("baseline present");
        assert!(cut > 15.0, "only {cut:.0}% off {baseline}");
    }
    // FIFO is competitive only for the biggest jobs (bin 4) — the paper's
    // §V-B1 observation.
    let lasmq = r.summary_for("LAS_MQ").unwrap();
    let fifo = r.summary_for("FIFO").unwrap();
    assert!(
        lasmq.mean_by_bin[0] < fifo.mean_by_bin[0] / 2.0,
        "bin 1 must favour LAS_MQ"
    );
    assert!(
        fifo.mean_by_bin[3] < lasmq.mean_by_bin[3] * 1.5,
        "bin 4 is where FIFO catches up: fifo {} vs las_mq {}",
        fifo.mean_by_bin[3],
        lasmq.mean_by_bin[3]
    );
    // Fairness: LAS_MQ has the smallest mean slowdown, FIFO the largest.
    assert!(lasmq.mean_slowdown < r.summary_for("FAIR").unwrap().mean_slowdown);
    assert!(lasmq.mean_slowdown < fifo.mean_slowdown);
}

#[test]
fn fig6_higher_load_keeps_the_gaps() {
    let r = fig56::run(&shapes_scale(), 50.0);
    assert!(r.lasmq_reduction_vs("FAIR").unwrap() > 20.0);
    assert!(r.lasmq_reduction_vs("FIFO").unwrap() > 30.0);
}

#[test]
fn fig7_heavy_tail_and_uniform_shapes() {
    let r = fig7::run(&shapes_scale());

    let h = &r.heavy_tailed;
    let lasmq = h.mean_for("LAS_MQ").unwrap();
    let las = h.mean_for("LAS").unwrap();
    let fair = h.mean_for("FAIR").unwrap();
    let fifo = h.mean_for("FIFO").unwrap();
    // LAS wins on heavy tails; LAS_MQ is right behind and beats Fair;
    // FIFO trails by a wide margin.
    assert!(las <= lasmq * 1.1, "LAS {las} should lead LAS_MQ {lasmq}");
    assert!(lasmq < fair, "LAS_MQ {lasmq} must beat Fair {fair}");
    assert!(
        fifo > 3.0 * fair,
        "FIFO {fifo} must be far worse than Fair {fair}"
    );

    let u = &r.uniform;
    let lasmq = u.mean_for("LAS_MQ").unwrap();
    let las = u.mean_for("LAS").unwrap();
    let fair = u.mean_for("FAIR").unwrap();
    let fifo = u.mean_for("FIFO").unwrap();
    // Identical jobs: Fair and LAS collapse to processor sharing; FIFO and
    // LAS_MQ serialize and need only about half the time.
    assert!(lasmq < 0.65 * fair, "LAS_MQ {lasmq} vs Fair {fair}");
    assert!(lasmq < 0.65 * las, "LAS_MQ {lasmq} vs LAS {las}");
    assert!(
        (lasmq / fifo - 1.0).abs() < 0.25,
        "LAS_MQ {lasmq} ≈ FIFO {fifo}"
    );
}

#[test]
fn fig8_queue_count_and_threshold_sensitivity() {
    let r = fig8::run(&shapes_scale());
    // One queue is FIFO-grade; ten queues beat Fair; the curve rises.
    let k1 = r.normalized_for_queues(1).unwrap();
    let k5 = r.normalized_for_queues(5).unwrap();
    let k10 = r.normalized_for_queues(10).unwrap();
    assert!(k1 < 0.7, "k=1 should lose badly to Fair, got {k1}");
    assert!(k10 > 1.0, "k=10 must beat Fair, got {k10}");
    assert!(
        k5 > k1 && k10 >= k5 * 0.95,
        "curve must rise: {k1} {k5} {k10}"
    );

    // Small thresholds all work; a threshold far above typical job sizes
    // collapses toward single-queue behaviour.
    let a1 = r.normalized_for_threshold(1.0).unwrap();
    let a100 = r.normalized_for_threshold(100.0).unwrap();
    assert!(a1 > 1.0, "α₁=1 must beat Fair, got {a1}");
    assert!(a100 < a1 * 0.95, "α₁=100 must degrade: {a100} vs {a1}");
}
