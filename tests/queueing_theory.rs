//! Validation against closed-form queueing theory.
//!
//! A scheduling simulator earns trust by matching theory where theory
//! exists. On a single-container cluster with Poisson arrivals the engine
//! is an M/G/1 queue, and classic results pin its mean response time:
//!
//! * **FCFS** (our FIFO): Pollaczek–Khinchine,
//!   `E[T] = E[S] + λ E[S²] / (2 (1 − ρ))`;
//! * **Processor sharing / foreground-background**: on a single container,
//!   equal-share Fair always hands the server to the least-served job —
//!   the **FB (least-attained-service)** discipline. Kleinrock's classic
//!   results apply: for *exponential* service, `E[T]_FB = E[T]_PS =
//!   E[S]/(1 − ρ)`; and unlike FCFS, FB *benefits* from service-time
//!   variance (it is the optimal blind policy for decreasing hazard
//!   rates).

use lasmq::schedulers::{Fair, Fifo};
use lasmq::simulator::{
    ClusterConfig, JobSpec, Scheduler, SimDuration, Simulation, StageKind, StageSpec, TaskSpec,
};
use lasmq::workload::arrivals::PoissonArrivals;
use lasmq::workload::dist::{Exponential, Sample};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds `n` single-stage jobs with the given service times (seconds),
/// split into `tasks` equal tasks each, arriving as a Poisson process of
/// rate `lambda`.
fn mg1_jobs(services: &[f64], tasks: u32, lambda: f64, rng: &mut StdRng) -> Vec<JobSpec> {
    let arrivals = PoissonArrivals::with_rate(lambda).take(rng, services.len());
    services
        .iter()
        .zip(arrivals)
        .map(|(&s, arrival)| {
            JobSpec::builder()
                .arrival(arrival)
                .stage(StageSpec::uniform(
                    StageKind::Generic,
                    tasks,
                    TaskSpec::new(SimDuration::from_secs_f64(s / tasks as f64)),
                ))
                .build()
        })
        .collect()
}

fn run_single_server(jobs: Vec<JobSpec>, scheduler: impl Scheduler, quantum: SimDuration) -> f64 {
    let report = Simulation::builder()
        .cluster(ClusterConfig::single_node(1))
        .quantum(quantum)
        .jobs(jobs)
        .build(scheduler)
        .expect("valid setup")
        .run();
    assert!(report.all_completed());
    report.mean_response_secs().expect("jobs completed")
}

#[test]
fn mm1_fcfs_matches_pollaczek_khinchine() {
    // M/M/1: E[S] = 10 s, ρ = 0.7 ⇒ E[T] = E[S] + λ·2E[S]²/(2(1−ρ))
    //      = 10 + 0.07·200/0.6 = 33.33 s.
    let mut rng = StdRng::seed_from_u64(1);
    let dist = Exponential::with_mean(10.0);
    let n = 12_000;
    let services: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng).max(0.01)).collect();
    let mean_s: f64 = services.iter().sum::<f64>() / n as f64;
    let mean_s2: f64 = services.iter().map(|s| s * s).sum::<f64>() / n as f64;
    let lambda = 0.07;
    let rho = lambda * mean_s;
    let analytic = mean_s + lambda * mean_s2 / (2.0 * (1.0 - rho));

    let jobs = mg1_jobs(&services, 1, lambda, &mut rng);
    let simulated = run_single_server(jobs, Fifo::new(), SimDuration::from_secs(1));
    let rel = (simulated - analytic).abs() / analytic;
    assert!(
        rel < 0.12,
        "M/M/1 FCFS: simulated {simulated:.1}s vs analytic {analytic:.1}s"
    );
}

#[test]
fn md1_fcfs_matches_pollaczek_khinchine() {
    // M/D/1: deterministic S = 10 s halves the waiting time of M/M/1.
    let mut rng = StdRng::seed_from_u64(2);
    let n = 8_000;
    let services = vec![10.0; n];
    let lambda = 0.07;
    let rho: f64 = lambda * 10.0;
    let analytic = 10.0 + lambda * 100.0 / (2.0 * (1.0 - rho));

    let jobs = mg1_jobs(&services, 1, lambda, &mut rng);
    let simulated = run_single_server(jobs, Fifo::new(), SimDuration::from_secs(1));
    let rel = (simulated - analytic).abs() / analytic;
    assert!(
        rel < 0.10,
        "M/D/1 FCFS: simulated {simulated:.1}s vs analytic {analytic:.1}s"
    );
}

#[test]
fn mm1_fb_matches_the_ps_formula_for_exponential_service() {
    // Kleinrock: for M/M/1, FB (least attained service first) has the
    // same mean response as PS: E[T] = E[S]/(1−ρ). Jobs split into 50
    // tasks of 0.2 s so the engine can time-slice them.
    let mut rng = StdRng::seed_from_u64(3);
    let dist = Exponential::with_mean(10.0);
    let n = 3_000;
    let services: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng).max(0.2)).collect();
    let mean_s: f64 = services.iter().sum::<f64>() / n as f64;
    let lambda = 0.06;
    let rho = lambda * mean_s;
    let analytic = mean_s / (1.0 - rho);

    let mut jobs = mg1_jobs(&services, 50, lambda, &mut rng);
    for job in &mut jobs {
        // Equal priorities: weighted fair sharing must degenerate to PS.
        assert_eq!(job.priority(), 1);
    }
    let simulated = run_single_server(jobs, Fair::unweighted(), SimDuration::from_millis(200));
    let rel = (simulated - analytic).abs() / analytic;
    assert!(
        rel < 0.15,
        "M/M/1 PS: simulated {simulated:.1}s vs analytic {analytic:.1}s"
    );
}

#[test]
fn fcfs_suffers_from_variance_fb_benefits() {
    // The canonical contrast. At fixed mean service (10 s): FCFS pays for
    // variance through the E[S²] term of Pollaczek–Khinchine, while the
    // blind FB discipline (least attained service — what equal-share Fair
    // does on one container, and the heart of LAS and LAS_MQ) *gains*
    // from it by letting the many short jobs overtake the rare long ones.
    let lambda = 0.06;
    let n = 5_000;
    let mut rng = StdRng::seed_from_u64(6);

    // Bimodal: 90% of jobs take 1 s, 10% take 91 s — mean 10 s, huge
    // variance.
    let bimodal: Vec<f64> = (0..n)
        .map(|i| if i % 10 == 0 { 91.0 } else { 1.0 })
        .collect();
    let det = vec![10.0; n];

    let fifo_bimodal = run_single_server(
        mg1_jobs(&bimodal, 1, lambda, &mut rng),
        Fifo::new(),
        SimDuration::from_secs(1),
    );
    let fifo_det = run_single_server(
        mg1_jobs(&det, 1, lambda, &mut rng),
        Fifo::new(),
        SimDuration::from_secs(1),
    );
    assert!(
        fifo_bimodal > 2.0 * fifo_det,
        "FCFS must suffer from variance: bimodal {fifo_bimodal:.1}s vs det {fifo_det:.1}s"
    );

    let fb_bimodal = run_single_server(
        mg1_jobs(&bimodal, 50, lambda, &mut rng),
        Fair::unweighted(),
        SimDuration::from_millis(200),
    );
    let fb_det = run_single_server(
        mg1_jobs(&det, 50, lambda, &mut rng),
        Fair::unweighted(),
        SimDuration::from_millis(200),
    );
    assert!(
        fb_bimodal < fb_det,
        "FB must benefit from variance: bimodal {fb_bimodal:.1}s vs det {fb_det:.1}s"
    );
    // Deterministic service is FB's worst case: it degrades toward
    // batch-style sharing, well above the PS mean E[S]/(1−ρ) = 25 s.
    let ps_mean = 10.0 / (1.0 - lambda * 10.0);
    assert!(
        fb_det > ps_mean,
        "deterministic FB {fb_det:.1}s should exceed the PS mean {ps_mean:.1}s"
    );
}
