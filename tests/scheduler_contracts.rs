//! Every shipped scheduler must satisfy the engine's scheduling-pass
//! contracts on every pass of a realistic workload — checked live by the
//! simulator's `InvariantSpy` test kit.

use lasmq::core::{LasMq, LasMqConfig};
use lasmq::schedulers::{EstimatedSjf, Fair, Fifo, Las, ShortestJobFirst, ShortestRemainingFirst};
use lasmq::simulator::testkit::InvariantSpy;
use lasmq::simulator::{ClusterConfig, JobSpec, Scheduler, Simulation};
use lasmq::workload::{FacebookTrace, PumaWorkload};
use lasmq::yarn::{CapacityController, CapacityGranularity};

fn check(jobs: Vec<JobSpec>, cluster: ClusterConfig, scheduler: impl Scheduler, oracle: bool) {
    let report = Simulation::builder()
        .cluster(cluster)
        .expose_oracle(oracle)
        .jobs(jobs)
        // The spy panics on the first contract violation.
        .build(InvariantSpy::new(scheduler).check_work_conservation(true))
        .expect("valid setup")
        .run();
    assert!(
        report.all_completed(),
        "{} left jobs unfinished",
        report.scheduler()
    );
}

#[test]
fn all_schedulers_honour_the_contracts_on_the_trace() {
    let jobs = FacebookTrace::new().jobs(400).seed(8).generate();
    let cluster = ClusterConfig::single_node(100);
    check(jobs.clone(), cluster, Fifo::new(), false);
    check(jobs.clone(), cluster, Fair::new(), false);
    check(jobs.clone(), cluster, Las::new(), false);
    check(
        jobs.clone(),
        cluster,
        LasMq::new(LasMqConfig::paper_simulations()),
        false,
    );
    check(jobs.clone(), cluster, ShortestJobFirst::new(), true);
    check(jobs.clone(), cluster, ShortestRemainingFirst::new(), true);
    check(jobs, cluster, EstimatedSjf::new(1.0, 0.05, 3), true);
}

#[test]
fn all_schedulers_honour_the_contracts_on_puma() {
    let jobs = PumaWorkload::new().jobs(25).seed(9).generate();
    let cluster = ClusterConfig::new(4, 30);
    check(jobs.clone(), cluster, Fifo::new(), false);
    check(jobs.clone(), cluster, Fair::new(), false);
    check(jobs.clone(), cluster, Las::new(), false);
    check(jobs.clone(), cluster, LasMq::with_paper_defaults(), false);
    check(
        jobs,
        cluster,
        CapacityController::new(
            LasMq::with_paper_defaults(),
            CapacityGranularity::WholePercent,
        ),
        false,
    );
}

#[test]
fn lasmq_honours_the_contracts_in_every_configuration_corner() {
    use lasmq::core::{QueueOrdering, QueueSharing, QueueWeights};
    let jobs = FacebookTrace::new().jobs(200).seed(10).generate();
    let cluster = ClusterConfig::single_node(50);
    for k in [1, 3, 10] {
        for sharing in [QueueSharing::Weighted, QueueSharing::StrictPriority] {
            for ordering in [QueueOrdering::RemainingDemand, QueueOrdering::Fifo] {
                let config = LasMqConfig::paper_simulations()
                    .with_num_queues(k)
                    .with_sharing(sharing)
                    .with_ordering(ordering)
                    .with_weights(QueueWeights::Geometric { ratio: 3.0 });
                check(jobs.clone(), cluster, LasMq::new(config), false);
            }
        }
    }
}
