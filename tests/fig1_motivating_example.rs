//! The paper's Fig. 1 motivating example, reproduced on the engine.
//!
//! Three jobs A, B, C of sizes 4, 4 and 1 arrive at t = 0, 1, 2 on a
//! single-slot cluster. Under LAS (Fig. 1(a)), C preempts and finishes at
//! t = 3, but A and B then share the slot and both drag on to t ≈ 8–9.
//! With a two-level queue (Fig. 1(b), threshold = 1 time slot), A and B
//! are demoted after their first slot, C still finishes at t = 3, and the
//! second queue then runs A and B *one by one*: A finishes at t = 6 — "the
//! response time of job A has been shortened from 9 to 6 (reduced by
//! 33%)" — while B and C keep their LAS response times.

use lasmq::core::{LasMq, LasMqConfig, QueueOrdering};
use lasmq::schedulers::Las;
use lasmq::simulator::{
    ClusterConfig, JobSpec, Scheduler, SimDuration, SimTime, Simulation, SimulationReport,
    StageKind, StageSpec, TaskSpec,
};

/// A job of `size` one-second unit tasks arriving at `arrival` seconds.
fn job(arrival: u64, size: u32) -> JobSpec {
    JobSpec::builder()
        .arrival(SimTime::from_secs(arrival))
        .stage(StageSpec::uniform(
            StageKind::Generic,
            size,
            TaskSpec::new(SimDuration::from_secs(1)),
        ))
        .build()
}

fn run(scheduler: impl Scheduler) -> SimulationReport {
    Simulation::builder()
        .cluster(ClusterConfig::single_node(1))
        .quantum(SimDuration::from_secs(1))
        .jobs(vec![job(0, 4), job(1, 4), job(2, 1)]) // A, B, C
        .build(scheduler)
        .expect("valid setup")
        .run()
}

fn finish_secs(report: &SimulationReport, idx: usize) -> f64 {
    report.outcomes()[idx]
        .finish
        .expect("completed")
        .as_secs_f64()
}

#[test]
fn fig1a_las_preempts_for_c_but_shares_between_a_and_b() {
    let report = run(Las::new());
    let (a, b, c) = (
        finish_secs(&report, 0),
        finish_secs(&report, 1),
        finish_secs(&report, 2),
    );
    // C preempts both big jobs and completes at t = 3.
    assert_eq!(c, 3.0, "C must finish at t=3 under LAS");
    // A and B then leapfrog slot by slot (the engine's quantum LAS is the
    // discrete version of Fig. 1(a)'s even sharing): one finishes at 8,
    // the other at 9.
    let mut tail = [a, b];
    tail.sort_by(f64::total_cmp);
    assert_eq!(tail, [8.0, 9.0], "A and B must share the tail under LAS");
}

#[test]
fn fig1b_two_queues_serialize_a_and_b_and_rescue_a() {
    // Two queues, FIFO within queues — the exact multilevel queue of
    // Fig. 1(b). Demotion follows Algorithm 1's strict inequality
    // (`jm > αᵢ`), so "demote after one time slot" means any threshold
    // strictly below one slot's worth of service.
    let config = LasMqConfig::paper_simulations()
        .with_num_queues(2)
        .with_first_threshold(0.5)
        .with_ordering(QueueOrdering::Fifo);
    let report = run(LasMq::new(config));
    let (a, b, c) = (
        finish_secs(&report, 0),
        finish_secs(&report, 1),
        finish_secs(&report, 2),
    );
    // C still finishes at t = 3…
    assert_eq!(c, 3.0, "C must keep its LAS response time");
    // …but the second queue runs A to completion first: t = 6, the
    // paper's 33% reduction from 9.
    assert_eq!(a, 6.0, "A must finish at t=6 with two queues");
    // B is unchanged relative to LAS's worst case.
    assert_eq!(b, 9.0, "B must finish at t=9");
}

#[test]
fn fig1_net_effect_mean_response_improves() {
    let las = run(Las::new()).mean_response_secs().unwrap();
    let config = LasMqConfig::paper_simulations()
        .with_num_queues(2)
        .with_first_threshold(0.5)
        .with_ordering(QueueOrdering::Fifo);
    let mq = run(LasMq::new(config)).mean_response_secs().unwrap();
    assert!(
        mq < las,
        "the multilevel queue must improve the example's mean response: {mq} vs {las}"
    );
}
